// Package opt implements the LLVM-style optimization passes that the paper
// re-runs on lifted code (§8, Fig. 17): mem2reg, instcombine, dce, adce,
// simplifycfg, gvn (with the Fig. 11b load/store eliminations), dse, licm,
// reassociate, sccp, ipsccp and sroa, plus a vector scalarization pass used
// before the scalar backends.
//
// All passes are LIMM-correct: transformations never move or remove memory
// accesses across fences or atomics except where Fig. 11a/11b allows it,
// and the correctness of those rules is checked independently by the
// memmodel package's bounded verifier.
package opt

import (
	"context"
	"fmt"

	"lasagne/internal/diag/inject"
	"lasagne/internal/ir"
)

// Pass is a named function-level transformation returning whether it
// changed anything.
type Pass struct {
	Name string
	Run  func(*ir.Func) bool
}

// Registry lists all function-local passes by name.
var Registry = map[string]Pass{}

// ModulePass is a named module-level transformation: unlike a Pass it may
// observe and rewrite any function, so it cannot participate in the
// function-parallel pipeline or the translation cache and always runs as a
// barrier.
type ModulePass struct {
	Name string
	Run  func(*ir.Module) bool
}

// ModuleRegistry lists all module-level passes by name. Pass names are
// unique across both registries.
var ModuleRegistry = map[string]ModulePass{}

func register(name string, run func(*ir.Func) bool) {
	Registry[name] = Pass{Name: name, Run: run}
}

func registerModule(name string, run func(*ir.Module) bool) {
	ModuleRegistry[name] = ModulePass{Name: name, Run: run}
}

func init() {
	register("mem2reg", Mem2Reg)
	register("instcombine", InstCombine)
	register("dce", DCE)
	register("adce", ADCE)
	register("simplifycfg", SimplifyCFG)
	register("gvn", GVN)
	register("dse", DSE)
	register("licm", LICM)
	register("reassociate", Reassociate)
	register("sccp", SCCP)
	register("sroa", SROA)
	register("scalarize", Scalarize)
	registerModule("ipsccp", IPSCCP)
}

// PassError attributes a post-pass check failure to the exact pass and
// function that produced the invalid body. Unwrap exposes the underlying
// verifier or invariant error to errors.Is/As.
type PassError struct {
	Pass string
	Func string
	Err  error
}

func (e *PassError) Error() string {
	return fmt.Sprintf("opt: function %s invalid after %s: %v", e.Func, e.Pass, e.Err)
}

func (e *PassError) Unwrap() error { return e.Err }

// PassCheck hooks the per-pass worklist for validation. Before (optional)
// runs just before a pass executes — the validation pipeline uses it to
// snapshot the pre-pass body for repro bundles. After (optional) runs after
// every executed pass; a non-nil error aborts the pipeline wrapped in a
// *PassError naming that pass. Skipped passes (provable no-ops under the
// worklist fixpoint rule) trigger neither hook.
type PassCheck struct {
	Before func(f *ir.Func, pass string)
	After  func(f *ir.Func, pass string) error
}

// verifyCheck is the PassCheck equivalent of the historical verify=true
// mode: ir.VerifyFunc after every executed pass.
var verifyCheck = &PassCheck{
	After: func(f *ir.Func, pass string) error { return ir.VerifyFunc(f) },
}

func checkFor(verify bool) *PassCheck {
	if verify {
		return verifyCheck
	}
	return nil
}

// StandardPipeline is the -O2-like pipeline used for Native compilation and
// the Opt/POpt/PPOpt variants.
var StandardPipeline = []string{
	"mem2reg", "sroa", "instcombine", "simplifycfg", "sccp",
	"reassociate", "gvn", "licm", "dse",
	"instcombine", "adce", "simplifycfg", "mem2reg", "sroa", "gvn", "instcombine", "dce",
}

// Run applies the named pass to the module: a function-local pass visits
// every defined function, a module-level pass runs once on the module.
func Run(m *ir.Module, name string) (bool, error) {
	if mp, ok := ModuleRegistry[name]; ok {
		return mp.Run(m), nil
	}
	p, ok := Registry[name]
	if !ok {
		return false, fmt.Errorf("opt: unknown pass %q", name)
	}
	changed := false
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		if p.Run(f) {
			changed = true
		}
	}
	return changed, nil
}

// RunPipeline applies a sequence of passes to the module. Maximal runs of
// function-local passes execute function-major through the same changed-set
// worklist as RunFuncPipeline — each function walks the whole segment,
// skipping passes that already fixpointed on its current body — which is
// byte-identical to the naive pass-major sweep because every pass in
// Registry only observes the function it rewrites (pinned by
// TestWorklistPipelineMatchesPassMajor). Module-level passes are barriers
// between segments. With verify set, functions are verified after every
// executed pass and the module after every segment and module pass.
func RunPipeline(m *ir.Module, names []string, verify bool) error {
	i := 0
	for i < len(names) {
		if mp, ok := ModuleRegistry[names[i]]; ok {
			mp.Run(m)
			if verify {
				if err := ir.Verify(m); err != nil {
					return fmt.Errorf("opt: module invalid after %s: %w", names[i], err)
				}
			}
			i++
			continue
		}
		j := i
		for j < len(names) {
			if _, ok := ModuleRegistry[names[j]]; ok {
				break
			}
			if _, ok := Registry[names[j]]; !ok {
				return fmt.Errorf("opt: unknown pass %q", names[j])
			}
			j++
		}
		for _, f := range m.Funcs {
			if f.External {
				continue
			}
			if err := runFuncWorklist(context.Background(), f, names[i:j], checkFor(verify)); err != nil {
				return err
			}
		}
		if verify {
			if err := ir.Verify(m); err != nil {
				return fmt.Errorf("opt: module invalid after %s: %w", names[j-1], err)
			}
		}
		i = j
	}
	return nil
}

// Optimize runs the standard pipeline.
func Optimize(m *ir.Module) error {
	return RunPipeline(m, StandardPipeline, false)
}

// RunFuncPipeline applies a sequence of function-local passes to a single
// function, checking ctx between passes so a per-function time budget can
// interrupt a slow pipeline. Every pass in Registry is function-local, so
// running the pipeline function-major produces the same result as the
// pass-major sweep; the fault-tolerant pipeline relies on that to optimize
// (and roll back) one function at a time. Module-level passes are rejected.
// When verify is set the function is checked after each executed pass so a
// miscompiling pass is caught at the pass that introduced it.
func RunFuncPipeline(ctx context.Context, f *ir.Func, names []string, verify bool) error {
	return RunFuncPipelineWithCheck(ctx, f, names, checkFor(verify))
}

// RunFuncPipelineWithCheck is RunFuncPipeline with arbitrary per-pass hooks
// (see PassCheck); the self-checking pipeline uses it to snapshot pre-pass
// bodies and run semantic invariant checks after each pass.
func RunFuncPipelineWithCheck(ctx context.Context, f *ir.Func, names []string, pc *PassCheck) error {
	if f.External {
		return nil
	}
	return runFuncWorklist(ctx, f, names, pc)
}

// ApplyPass runs one registered function-local pass on f, reporting whether
// it changed anything. It is the replay primitive used by repro bundles,
// which re-execute a single pass on a decoded pre-pass body.
func ApplyPass(f *ir.Func, name string) (bool, error) {
	p, ok := Registry[name]
	if !ok {
		if _, isMod := ModuleRegistry[name]; isMod {
			return false, fmt.Errorf("opt: module-level pass %q cannot run on a single function", name)
		}
		return false, fmt.Errorf("opt: unknown pass %q", name)
	}
	changed := p.Run(f)
	if maybeCorrupt(f, name) {
		changed = true
	}
	return changed, nil
}

// runFuncWorklist walks the pass sequence with a changed-set worklist:
// `stamp` counts mutations of f, and a pass that reports no change is
// recorded as fixed at the current stamp — re-encountering it (the standard
// pipeline repeats instcombine, simplifycfg, mem2reg, sroa and gvn) while
// the body is still at that stamp skips it, because a pass that just
// fixpointed on exactly this body is a provable no-op. Any intervening
// change bumps the stamp and naturally invalidates every recorded fixpoint.
func runFuncWorklist(ctx context.Context, f *ir.Func, names []string, pc *PassCheck) error {
	stamp := 0
	fixedAt := make(map[string]int, len(names))
	for _, n := range names {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("opt: pipeline interrupted before %s on %s: %w", n, f.Name, err)
		}
		p, ok := Registry[n]
		if !ok {
			if _, isMod := ModuleRegistry[n]; isMod {
				return fmt.Errorf("opt: module-level pass %q cannot run in a function pipeline", n)
			}
			return fmt.Errorf("opt: unknown pass %q", n)
		}
		if at, seen := fixedAt[n]; seen && at == stamp {
			continue
		}
		if pc != nil && pc.Before != nil {
			pc.Before(f, n)
		}
		changed := p.Run(f)
		if maybeCorrupt(f, n) {
			changed = true
		}
		if changed {
			stamp++
		} else {
			fixedAt[n] = stamp
		}
		if pc != nil && pc.After != nil {
			if err := pc.After(f, n); err != nil {
				return &PassError{Pass: n, Func: f.Name, Err: err}
			}
		}
	}
	return nil
}

// maybeCorrupt applies the fault-injection harness's silent-miscompile
// modes: with "corrupt-fence:<pass>" armed it deletes the function's first
// fence (invisible to ir.Verify, caught by the fence-coverage checkpoint);
// with "corrupt-compute:<pass>" armed it flips the first integer add to a
// sub (verifier-clean, caught only by the differential oracle). Both are
// deterministic so a bisection re-run reproduces the same miscompile.
func maybeCorrupt(f *ir.Func, pass string) bool {
	corrupted := false
	if inject.ModeOf("corrupt-fence:"+pass) == inject.Corrupt {
	fence:
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpFence {
					b.Remove(in)
					corrupted = true
					break fence
				}
			}
		}
	}
	if inject.ModeOf("corrupt-compute:"+pass) == inject.Corrupt {
	compute:
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpAdd && ir.IsInt(in.Ty) {
					in.Op = ir.OpSub
					corrupted = true
					break compute
				}
			}
		}
	}
	return corrupted
}

// baseObject traces a pointer to its underlying object: an alloca
// instruction, a global, or nil when unknown.
func baseObject(v ir.Value) ir.Value {
	for depth := 0; depth < 64; depth++ {
		switch x := v.(type) {
		case *ir.Global:
			return x
		case *ir.Instr:
			switch x.Op {
			case ir.OpAlloca:
				return x
			case ir.OpBitcast, ir.OpGEP:
				v = x.Args[0]
				continue
			}
			return nil
		default:
			return nil
		}
	}
	return nil
}

// mayAlias conservatively decides whether two pointers can refer to
// overlapping memory. Distinct identified objects never alias.
func mayAlias(a, b ir.Value) bool {
	if a == b {
		return true
	}
	oa, ob := baseObject(a), baseObject(b)
	if oa != nil && ob != nil && oa != ob {
		return false
	}
	return true
}

// isPrivate reports whether the pointer provably refers to a non-escaping
// alloca: thread-private memory that fences cannot order. GVN and DSE only
// move accesses across fences for private memory — strictly stronger than
// the Fig. 11b fenced rules, which are stated for the paper's final-values
// behavior definition (see internal/memmodel's strong-observation tests).
func isPrivate(f *ir.Func, p ir.Value) bool {
	base := baseObject(p)
	a, ok := base.(*ir.Instr)
	if !ok || a.Op != ir.OpAlloca {
		return false
	}
	return !escapes(f, a)
}

// escapes reports whether any use chain of the alloca leaves the
// load/store-address discipline (ptrtoint, calls, stored as a value, ...).
func escapes(f *ir.Func, a *ir.Instr) bool {
	uses := ir.ComputeUses(f)
	var visit func(v ir.Value, depth int) bool
	visit = func(v ir.Value, depth int) bool {
		if depth > 16 {
			return true
		}
		for _, u := range uses[v] {
			switch u.Op {
			case ir.OpLoad:
			case ir.OpStore:
				if u.Args[0] == v {
					return true // the pointer itself is stored
				}
			case ir.OpBitcast, ir.OpGEP:
				if visit(u, depth+1) {
					return true
				}
			default:
				return true
			}
		}
		return false
	}
	return visit(a, 0)
}

package opt_test

import (
	"testing"

	"lasagne/internal/backend"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/lifter"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
	"lasagne/internal/refine"
	"lasagne/internal/sim"
)

// fullPipeline compiles src, lowers to x86, lifts, optionally refines,
// places fences, optionally optimizes, then checks the result in both the
// IR interpreter and the Arm64 simulator against the original program.
func fullPipeline(t *testing.T, src string, doRefine, doOpt bool) *ir.Module {
	t.Helper()
	orig, err := minic.Compile("test", src)
	if err != nil {
		t.Fatalf("minic: %v", err)
	}
	ip := ir.NewInterp(orig)
	if _, err := ip.Run("main"); err != nil {
		t.Fatal(err)
	}
	want := ip.Out.String()

	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	if doRefine {
		refine.Run(lifted)
		if err := ir.Verify(lifted); err != nil {
			t.Fatalf("invalid after refine: %v", err)
		}
	}
	fences.Place(lifted, fences.Options{SkipStackAccesses: true})
	if err := ir.Verify(lifted); err != nil {
		t.Fatalf("invalid after fence placement: %v", err)
	}
	if doOpt {
		if err := opt.RunPipeline(lifted, opt.StandardPipeline, true); err != nil {
			t.Fatalf("opt: %v", err)
		}
	}

	// Reference interpreter on the transformed module.
	lip := ir.NewInterp(lifted)
	if _, err := lip.Run("main"); err != nil {
		t.Fatalf("transformed IR run: %v\n%s", err, lifted)
	}
	if got := lip.Out.String(); got != want {
		t.Fatalf("transformed IR output %q, want %q", got, want)
	}

	// Arm64 codegen + simulation.
	armBin, err := backend.Compile(lifted, "arm64")
	if err != nil {
		t.Fatalf("arm64 compile: %v", err)
	}
	mach, err := sim.NewMachine(armBin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		t.Fatalf("arm64 run: %v", err)
	}
	if got := mach.Out.String(); got != want {
		t.Fatalf("arm64 output %q, want %q", got, want)
	}
	return lifted
}

const workloadSrc = `
int histo[8];
int total;
double weights[64];

int classify(int v) { return (v * 7 + 3) % 8; }

void worker(int tid) {
  int i;
  for (i = tid; i < 64; i = i + 4) {
    int bucket = classify(i);
    atomic_add(&histo[bucket], 1);
    weights[i] = (double)i * 0.5;
  }
}

int main() {
  int t;
  for (t = 0; t < 4; t = t + 1) spawn(worker, t);
  join();
  int i;
  int sum = 0;
  for (i = 0; i < 8; i = i + 1) sum = sum + histo[i] * (i + 1);
  print_int(sum);
  double acc = 0.0;
  for (i = 0; i < 64; i = i + 1) acc = acc + weights[i];
  print_float(acc);
  return 0;
}`

func TestPipelineLiftedOnly(t *testing.T) {
	fullPipeline(t, workloadSrc, false, false)
}

func TestPipelineOptimized(t *testing.T) {
	fullPipeline(t, workloadSrc, false, true)
}

func TestPipelineRefinedOptimized(t *testing.T) {
	fullPipeline(t, workloadSrc, true, true)
}

func TestRefinementReducesCastsAndFences(t *testing.T) {
	src := workloadSrc
	orig, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}

	plain, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	castsBefore := refine.CountPtrCasts(plain)
	fences.Place(plain, fences.Options{SkipStackAccesses: true})
	fencesPlain := fences.Count(plain)

	refined, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	refine.Run(refined)
	castsAfter := refine.CountPtrCasts(refined)
	fences.Place(refined, fences.Options{SkipStackAccesses: true})
	fencesRefined := fences.Count(refined)

	if castsAfter >= castsBefore {
		t.Errorf("refinement did not reduce pointer casts: %d -> %d", castsBefore, castsAfter)
	}
	if fencesRefined >= fencesPlain {
		t.Errorf("refinement did not reduce fences: %d -> %d", fencesPlain, fencesRefined)
	}
	t.Logf("casts %d -> %d (%.1f%%), fences %d -> %d (%.1f%%)",
		castsBefore, castsAfter, 100*float64(castsBefore-castsAfter)/float64(castsBefore),
		fencesPlain, fencesRefined, 100*float64(fencesPlain-fencesRefined)/float64(fencesPlain))
}

func TestFenceMergingReducesFences(t *testing.T) {
	orig, err := minic.Compile("t", workloadSrc)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	m, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	fences.Place(m, fences.Options{SkipStackAccesses: true})
	before := fences.Count(m)
	removed := fences.Merge(m, fences.Options{SkipStackAccesses: true})
	after := fences.Count(m)
	if removed == 0 || after >= before {
		t.Fatalf("merging removed %d fences (%d -> %d)", removed, before, after)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
}

func TestOptReducesCodeSize(t *testing.T) {
	orig, err := minic.Compile("t", workloadSrc)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	m, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	fences.Place(m, fences.Options{SkipStackAccesses: true})
	before := m.NumInstrs()
	if err := opt.RunPipeline(m, opt.StandardPipeline, true); err != nil {
		t.Fatal(err)
	}
	after := m.NumInstrs()
	if after >= before {
		t.Fatalf("optimization grew code: %d -> %d", before, after)
	}
	ratio := float64(after) / float64(before)
	t.Logf("code size %d -> %d (%.1f%% of lifted)", before, after, 100*ratio)
	if ratio > 0.8 {
		t.Errorf("expected substantial reduction on lifted code, got %.1f%%", 100*ratio)
	}
}

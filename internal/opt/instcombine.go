package opt

import (
	"math"

	"lasagne/internal/ir"
)

// InstCombine performs peephole simplification: constant folding, algebraic
// identities and cast-chain collapsing. It iterates to a fixpoint.
func InstCombine(f *ir.Func) bool {
	changed := false
	for iter := 0; iter < 8; iter++ {
		n := 0
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
				if in.Parent == nil {
					continue
				}
				if v := simplify(in); v != nil {
					ir.ReplaceAllUses(f, in, v)
					b.Remove(in)
					n++
				}
			}
		}
		if n == 0 {
			break
		}
		changed = true
	}
	if DCE(f) {
		changed = true
	}
	return changed
}

// simplify returns a replacement value for in, or nil.
func simplify(in *ir.Instr) ir.Value {
	switch {
	case ir.IsBinaryOp(in.Op):
		return simplifyBinary(in)
	case ir.IsCast(in.Op):
		return simplifyCast(in)
	}
	switch in.Op {
	case ir.OpICmp:
		return simplifyICmp(in)
	case ir.OpSelect:
		if c, ok := ir.ConstIntValue(in.Args[0]); ok {
			if c&1 != 0 {
				return in.Args[1]
			}
			return in.Args[2]
		}
		if in.Args[1] == in.Args[2] {
			return in.Args[1]
		}
	case ir.OpPhi:
		// All incoming values identical (ignoring self-references).
		var uniq ir.Value
		for _, a := range in.Args {
			if a == ir.Value(in) {
				continue
			}
			if uniq == nil {
				uniq = a
			} else if uniq != a {
				return nil
			}
		}
		if uniq != nil && len(in.Args) > 0 {
			return uniq
		}
	case ir.OpGEP:
		// gep T, p, 0, 0, ... -> p when the types line up.
		allZero := true
		for _, idx := range in.Args[1:] {
			c, ok := ir.ConstIntValue(idx)
			if !ok || c != 0 {
				allZero = false
				break
			}
		}
		if allZero && in.Args[0].Type().Equal(in.Ty) {
			return in.Args[0]
		}
	}
	return nil
}

func intConstOf(v ir.Value) (int64, *ir.IntType, bool) {
	if c, ok := v.(*ir.ConstInt); ok {
		return c.V, c.Ty, true
	}
	return 0, nil, false
}

func simplifyBinary(in *ir.Instr) ir.Value {
	a, b := in.Args[0], in.Args[1]
	av, aty, aConst := intConstOf(a)
	bv, _, bConst := intConstOf(b)

	// Full constant folding (integer).
	if aConst && bConst {
		if r, ok := foldIntBinary(in.Op, av, bv, aty.Bits); ok {
			return ir.IntConst(aty, r)
		}
	}
	// Float constant folding.
	if fa, okA := a.(*ir.ConstFloat); okA {
		if fb, okB := b.(*ir.ConstFloat); okB {
			if r, ok := foldFloatBinary(in.Op, fa.V, fb.V); ok {
				return ir.FloatConst(fa.Ty, r)
			}
		}
	}
	// Canonicalize constants to the right for commutative ops.
	if aConst && !bConst && ir.CommutativeOp(in.Op) {
		in.Args[0], in.Args[1] = b, a
		a, b = in.Args[0], in.Args[1]
		av, aty, aConst = intConstOf(a)
		bv, _, bConst = intConstOf(b)
	}

	if bConst {
		switch in.Op {
		case ir.OpAdd, ir.OpSub, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr:
			if bv == 0 {
				return a
			}
		case ir.OpMul:
			if bv == 1 {
				return a
			}
			if bv == 0 {
				return b
			}
		case ir.OpAnd:
			if bv == 0 {
				return b
			}
			if signExt(uint64(bv), ir.IntBits(in.Ty)) == -1 {
				return a
			}
		case ir.OpSDiv, ir.OpUDiv:
			if bv == 1 {
				return a
			}
		}
		// (x op c1) op c2 -> x op (c1 op c2) for add/and/or/xor.
		if ai, ok := a.(*ir.Instr); ok && ai.Op == in.Op {
			if cv, cty, cc := intConstOf(ai.Args[1]); cc {
				switch in.Op {
				case ir.OpAdd:
					in.Args[0] = ai.Args[0]
					in.Args[1] = ir.IntConst(cty, cv+bv)
					return nil
				case ir.OpAnd:
					in.Args[0] = ai.Args[0]
					in.Args[1] = ir.IntConst(cty, cv&bv)
					return nil
				case ir.OpOr:
					in.Args[0] = ai.Args[0]
					in.Args[1] = ir.IntConst(cty, cv|bv)
					return nil
				case ir.OpXor:
					in.Args[0] = ai.Args[0]
					in.Args[1] = ir.IntConst(cty, cv^bv)
					return nil
				}
			}
		}
	}
	if a == b {
		switch in.Op {
		case ir.OpXor, ir.OpSub:
			if it, ok := in.Ty.(*ir.IntType); ok {
				return ir.IntConst(it, 0)
			}
		case ir.OpAnd, ir.OpOr:
			return a
		}
	}
	return nil
}

func foldIntBinary(op ir.Op, a, b int64, bits int) (int64, bool) {
	mask := uint64(1)<<uint(bits) - 1
	if bits >= 64 {
		mask = ^uint64(0)
	}
	au, bu := uint64(a)&mask, uint64(b)&mask
	var r uint64
	switch op {
	case ir.OpAdd:
		r = au + bu
	case ir.OpSub:
		r = au - bu
	case ir.OpMul:
		r = au * bu
	case ir.OpAnd:
		r = au & bu
	case ir.OpOr:
		r = au | bu
	case ir.OpXor:
		r = au ^ bu
	case ir.OpShl:
		r = au << (bu & 63)
	case ir.OpLShr:
		r = au >> (bu & 63)
	case ir.OpAShr:
		r = uint64(signExt(au, bits) >> (bu & 63))
	case ir.OpSDiv:
		if b == 0 {
			return 0, false
		}
		r = uint64(signExt(au, bits) / signExt(bu, bits))
	case ir.OpSRem:
		if b == 0 {
			return 0, false
		}
		r = uint64(signExt(au, bits) % signExt(bu, bits))
	case ir.OpUDiv:
		if bu == 0 {
			return 0, false
		}
		r = au / bu
	case ir.OpURem:
		if bu == 0 {
			return 0, false
		}
		r = au % bu
	default:
		return 0, false
	}
	return signExt(r&mask, bits), true
}

func foldFloatBinary(op ir.Op, a, b float64) (float64, bool) {
	switch op {
	case ir.OpFAdd:
		return a + b, true
	case ir.OpFSub:
		return a - b, true
	case ir.OpFMul:
		return a * b, true
	case ir.OpFDiv:
		return a / b, true
	}
	return 0, false
}

func signExt(v uint64, bits int) int64 {
	if bits >= 64 {
		return int64(v)
	}
	sh := uint(64 - bits)
	return int64(v<<sh) >> sh
}

func simplifyCast(in *ir.Instr) ir.Value {
	src := in.Args[0]
	// Constant folding.
	if c, ok := src.(*ir.ConstInt); ok {
		switch in.Op {
		case ir.OpTrunc, ir.OpZext, ir.OpSext:
			bits := ir.IntBits(in.Ty)
			v := c.V
			if in.Op == ir.OpZext {
				srcBits := ir.IntBits(c.Ty)
				if srcBits < 64 {
					v &= int64(1)<<uint(srcBits) - 1
				}
			}
			return ir.IntConst(in.Ty.(*ir.IntType), signExt(uint64(v), bits))
		case ir.OpSIToFP:
			if ft, ok := in.Ty.(*ir.FloatType); ok {
				return ir.FloatConst(ft, float64(c.V))
			}
		}
	}
	if c, ok := src.(*ir.ConstFloat); ok {
		switch in.Op {
		case ir.OpFPToSI:
			if it, ok := in.Ty.(*ir.IntType); ok && !math.IsNaN(c.V) {
				return ir.IntConst(it, int64(c.V))
			}
		case ir.OpFPExt:
			return ir.FloatConst(ir.F64, c.V)
		case ir.OpFPTrunc:
			return ir.FloatConst(ir.F32, float64(float32(c.V)))
		}
	}

	si, ok := src.(*ir.Instr)
	if !ok {
		if in.Op == ir.OpBitcast && src.Type().Equal(in.Ty) {
			return src
		}
		return nil
	}
	switch in.Op {
	case ir.OpBitcast:
		if src.Type().Equal(in.Ty) {
			return src
		}
		if si.Op == ir.OpBitcast {
			if si.Args[0].Type().Equal(in.Ty) {
				return si.Args[0]
			}
			in.Args[0] = si.Args[0]
		}
	case ir.OpPtrToInt:
		// ptrtoint(inttoptr x) -> x (same width).
		if si.Op == ir.OpIntToPtr && si.Args[0].Type().Equal(in.Ty) {
			return si.Args[0]
		}
		// ptrtoint(bitcast p) -> ptrtoint p.
		if si.Op == ir.OpBitcast && ir.IsPtr(si.Args[0].Type()) {
			in.Args[0] = si.Args[0]
		}
	case ir.OpIntToPtr:
		// inttoptr(ptrtoint p) -> p or bitcast p (the refine Rule 1 also
		// lives here so ordinary optimization pipelines collapse chains).
		if si.Op == ir.OpPtrToInt {
			if si.Args[0].Type().Equal(in.Ty) {
				return si.Args[0]
			}
			in.Op = ir.OpBitcast
			in.Args[0] = si.Args[0]
		}
	case ir.OpTrunc:
		// trunc(zext/sext x): same width -> x; wider -> re-extend.
		if si.Op == ir.OpZext || si.Op == ir.OpSext {
			inner := si.Args[0]
			if inner.Type().Equal(in.Ty) {
				return inner
			}
			if ir.IntBits(inner.Type()) > ir.IntBits(in.Ty) {
				in.Args[0] = inner
			}
		}
	case ir.OpZext:
		if si.Op == ir.OpZext {
			in.Args[0] = si.Args[0]
		}
	case ir.OpSext:
		if si.Op == ir.OpSext {
			in.Args[0] = si.Args[0]
		}
	}
	return nil
}

func simplifyICmp(in *ir.Instr) ir.Value {
	a, b := in.Args[0], in.Args[1]
	av, _, aConst := intConstOf(a)
	bv, _, bConst := intConstOf(b)
	if aConst && bConst {
		bits := ir.IntBits(a.Type())
		return ir.I1Const(evalPred(in.Pred, signExt(uint64(av), bits), signExt(uint64(bv), bits), bits))
	}
	if a == b {
		switch in.Pred {
		case ir.PredEQ, ir.PredSLE, ir.PredSGE, ir.PredULE, ir.PredUGE:
			return ir.I1Const(true)
		case ir.PredNE, ir.PredSLT, ir.PredSGT, ir.PredULT, ir.PredUGT:
			return ir.I1Const(false)
		}
	}
	// icmp (zext x), 0 -> icmp x, 0.
	if ai, ok := a.(*ir.Instr); ok && ai.Op == ir.OpZext && bConst && bv == 0 &&
		(in.Pred == ir.PredEQ || in.Pred == ir.PredNE) {
		in.Args[0] = ai.Args[0]
		in.Args[1] = ir.IntConst(ai.Args[0].Type().(*ir.IntType), 0)
	}
	return nil
}

func evalPred(p ir.Pred, a, b int64, bits int) bool {
	mask := ^uint64(0)
	if bits < 64 {
		mask = 1<<uint(bits) - 1
	}
	au, bu := uint64(a)&mask, uint64(b)&mask
	switch p {
	case ir.PredEQ:
		return au == bu
	case ir.PredNE:
		return au != bu
	case ir.PredSLT:
		return a < b
	case ir.PredSLE:
		return a <= b
	case ir.PredSGT:
		return a > b
	case ir.PredSGE:
		return a >= b
	case ir.PredULT:
		return au < bu
	case ir.PredULE:
		return au <= bu
	case ir.PredUGT:
		return au > bu
	case ir.PredUGE:
		return au >= bu
	}
	return false
}

package opt

import "lasagne/internal/ir"

// DCE removes instructions whose results are unused and which have no side
// effects, iterating to a fixpoint. Stores into write-only private allocas
// (never loaded, never escaping — e.g. the lifter's dead flag slots) are
// also dead: the memory is thread-private and never read.
func DCE(f *ir.Func) bool {
	changed := false
	for {
		uses := ir.ComputeUses(f)
		dead := writeOnlyAllocas(f, uses)
		n := 0
		for _, b := range f.Blocks {
			for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
				if in.Op == ir.OpStore && in.Order == ir.NotAtomic {
					if a, ok := in.Args[1].(*ir.Instr); ok && dead[a] {
						b.Remove(in)
						n++
					}
					continue
				}
				if in.HasSideEffects() || in.IsTerminator() {
					continue
				}
				if ir.IsVoid(in.Ty) {
					continue
				}
				if len(uses[in]) == 0 {
					b.Remove(in)
					n++
				}
			}
		}
		if n == 0 {
			return changed
		}
		changed = true
	}
}

// writeOnlyAllocas returns the allocas whose only uses are non-atomic
// stores *to* them (no loads, no escapes): their stores are unobservable.
func writeOnlyAllocas(f *ir.Func, uses ir.Uses) map[*ir.Instr]bool {
	out := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpAlloca {
				continue
			}
			ok := true
			for _, u := range uses[in] {
				if u.Op != ir.OpStore || u.Args[1] != ir.Value(in) ||
					u.Args[0] == ir.Value(in) || u.Order != ir.NotAtomic {
					ok = false
					break
				}
			}
			if ok {
				out[in] = true
			}
		}
	}
	return out
}

// ADCE is aggressive dead-code elimination: it assumes everything dead and
// marks live only what is reachable from side-effecting roots, then deletes
// the rest (including cyclic dead phi webs that plain DCE cannot remove).
func ADCE(f *ir.Func) bool {
	removeUnreachable(f)
	live := map[*ir.Instr]bool{}
	var work []*ir.Instr
	markLive := func(in *ir.Instr) {
		if !live[in] {
			live[in] = true
			work = append(work, in)
		}
	}
	deadSlots := writeOnlyAllocas(f, ir.ComputeUses(f))
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && in.Order == ir.NotAtomic {
				if a, ok := in.Args[1].(*ir.Instr); ok && deadSlots[a] {
					continue // unobservable store: not a root
				}
			}
			if in.HasSideEffects() || in.IsTerminator() {
				markLive(in)
			}
		}
	}
	for len(work) > 0 {
		in := work[len(work)-1]
		work = work[:len(work)-1]
		for _, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				markLive(ai)
			}
		}
	}
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if !live[in] {
				b.Remove(in)
				changed = true
			}
		}
	}
	return changed
}

// removeUnreachable deletes blocks not reachable from the entry and prunes
// phi edges from removed predecessors.
func removeUnreachable(f *ir.Func) bool {
	reach := ir.ReachableBlocks(f)
	if len(reach) == len(f.Blocks) {
		return false
	}
	var kept []*ir.Block
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			for _, in := range b.Instrs {
				in.Parent = nil
			}
		}
	}
	f.Blocks = kept
	// Prune phi incoming edges from unreachable predecessors.
	for _, b := range f.Blocks {
		for _, phi := range b.Phis() {
			for k := 0; k < len(phi.Blocks); {
				if !reach[phi.Blocks[k]] {
					phi.Args = append(phi.Args[:k], phi.Args[k+1:]...)
					phi.Blocks = append(phi.Blocks[:k], phi.Blocks[k+1:]...)
				} else {
					k++
				}
			}
		}
	}
	return true
}

package opt

import (
	"sort"

	"lasagne/internal/ir"
)

// Reassociate re-ranks commutative expression chains so constants sink to
// the outermost position where instcombine can fold them:
// (x + c) + y -> (x + y) + c.
func Reassociate(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !ir.CommutativeOp(in.Op) || len(in.Args) != 2 {
				continue
			}
			ai, ok := in.Args[0].(*ir.Instr)
			if !ok || ai.Op != in.Op || len(ai.Args) != 2 {
				continue
			}
			_, innerConst := ai.Args[1].(*ir.ConstInt)
			_, outerConst := in.Args[1].(*ir.ConstInt)
			if innerConst && !outerConst {
				// (x op c) op y  ->  (x op y) op c, reusing ai only if this
				// is its single use (otherwise we would duplicate work).
				uses := ir.ComputeUses(f)
				if len(uses[ai]) != 1 {
					continue
				}
				c := ai.Args[1]
				y := in.Args[1]
				ai.Args[1] = y
				in.Args[1] = c
				changed = true
			}
		}
	}
	if changed {
		InstCombine(f)
	}
	return changed
}

// cell is one scalar slot discovered inside a byte-array alloca.
type cell struct {
	off int64
	ty  ir.Type
}

// SROA (scalar replacement of aggregates) splits byte-array allocas that
// are only accessed through constant offsets at consistent scalar types
// into one scalar alloca per cell, unlocking mem2reg for lifted stack
// frames. Any escaping use (ptrtoint, calls, dynamic offsets, overlapping
// cells) disqualifies the alloca — which is exactly why the §5 refinement
// matters: before it, frame addresses flow through ptrtoint chains.
func SROA(f *ir.Func) bool {
	removeUnreachable(f)
	uses := ir.ComputeUses(f)
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Op != ir.OpAlloca || in.Parent == nil {
				continue
			}
			at, ok := in.Elem.(*ir.ArrayType)
			if !ok || !at.Elem.Equal(ir.I8) || len(in.Args) != 0 {
				continue
			}
			if splitAlloca(f, in, uses) {
				changed = true
				uses = ir.ComputeUses(f)
			}
		}
	}
	if changed {
		DCE(f)
	}
	return changed
}

// access records one load/store reaching the alloca at a constant offset.
type access struct {
	instr *ir.Instr
	off   int64
	ty    ir.Type
}

// collectAccesses walks the use tree of v (bitcasts and constant GEPs) and
// gathers all terminal accesses. It returns false if any use escapes.
func collectAccesses(uses ir.Uses, v ir.Value, off int64, out *[]access, chain *[]*ir.Instr) bool {
	for _, u := range uses[v] {
		switch u.Op {
		case ir.OpBitcast:
			*chain = append(*chain, u)
			if !collectAccesses(uses, u, off, out, chain) {
				return false
			}
		case ir.OpGEP:
			if u.Args[0] != v {
				return false // used as an index?!
			}
			delta := int64(0)
			elem := u.Elem
			for k, idx := range u.Args[1:] {
				c, ok := ir.ConstIntValue(idx)
				if !ok {
					return false
				}
				es := int64(elem.Size())
				if k > 0 {
					at, ok := elem.(*ir.ArrayType)
					if !ok {
						return false
					}
					elem = at.Elem
					es = int64(elem.Size())
				}
				delta += c * es
			}
			*chain = append(*chain, u)
			if !collectAccesses(uses, u, off+delta, out, chain) {
				return false
			}
		case ir.OpLoad:
			if u.Order != ir.NotAtomic {
				return false
			}
			*out = append(*out, access{instr: u, off: off, ty: u.Ty})
		case ir.OpStore:
			if u.Args[1] != v || u.Order != ir.NotAtomic {
				return false // stored as a value, or atomic
			}
			*out = append(*out, access{instr: u, off: off, ty: u.Args[0].Type()})
		default:
			return false
		}
	}
	return true
}

func splitAlloca(f *ir.Func, a *ir.Instr, uses ir.Uses) bool {
	var accs []access
	var chain []*ir.Instr
	if !collectAccesses(uses, a, 0, &accs, &chain) {
		return false
	}
	if len(accs) == 0 {
		return false
	}
	// Build non-overlapping cells; any overlap or type conflict aborts.
	cells := map[int64]ir.Type{}
	for _, ac := range accs {
		if ir.IsVector(ac.ty) {
			return false
		}
		if prev, ok := cells[ac.off]; ok {
			if !prev.Equal(ac.ty) {
				return false
			}
			continue
		}
		cells[ac.off] = ac.ty
	}
	// Work in ascending offset order so the replacement allocas appear in a
	// deterministic sequence in the entry block.
	offs := make([]int64, 0, len(cells))
	for off := range cells {
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	// Overlap check.
	type span struct{ lo, hi int64 }
	var spans []span
	for _, off := range offs {
		spans = append(spans, span{off, off + int64(cells[off].Size())})
	}
	for i := range spans {
		for j := range spans {
			if i != j && spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				return false
			}
		}
	}

	// Create one alloca per cell.
	entry := f.Entry()
	cellAlloca := map[int64]*ir.Instr{}
	for _, off := range offs {
		ty := cells[off]
		na := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PointerTo(ty), Elem: ty}
		entry.InsertBefore(na, entry.Instrs[0])
		cellAlloca[off] = na
	}
	// Rewrite accesses.
	for _, ac := range accs {
		na := cellAlloca[ac.off]
		switch ac.instr.Op {
		case ir.OpLoad:
			ac.instr.Args[0] = na
		case ir.OpStore:
			ac.instr.Args[1] = na
		}
	}
	// Remove the dead address chain and the original alloca.
	for i := len(chain) - 1; i >= 0; i-- {
		in := chain[i]
		if in.Parent != nil && !ir.HasUses(f, in) {
			in.Parent.Remove(in)
		}
	}
	if !ir.HasUses(f, a) {
		a.Parent.Remove(a)
	}
	return true
}

// Scalarize rewrites vector-typed operations into scalar sequences so the
// scalar backends can compile modules whose lifted code used packed SSE
// semantics. Vector loads/stores become per-lane accesses, vector
// arithmetic becomes per-lane arithmetic, and vector<->scalar bitcasts
// become shift/or packing.
func Scalarize(f *ir.Func) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			if in.Parent == nil {
				continue
			}
			if scalarizeInstr(f, b, in) {
				changed = true
			}
		}
	}
	if changed {
		DCE(f)
	}
	return changed
}

func scalarizeInstr(f *ir.Func, b *ir.Block, in *ir.Instr) bool {
	vt, isVec := in.Ty.(*ir.VectorType)
	if !isVec {
		// Vector stores are void-typed.
		if in.Op == ir.OpStore {
			if svt, ok := in.Args[0].Type().(*ir.VectorType); ok {
				lanes := explodeVector(f, b, in, in.Args[0], svt)
				base := castLanePtr(b, in, in.Args[1], svt.Elem)
				for k, lane := range lanes {
					gep := &ir.Instr{Op: ir.OpGEP, Ty: ir.PointerTo(svt.Elem), Elem: svt.Elem,
						Args: []ir.Value{base, ir.I64Const(int64(k))}}
					b.InsertBefore(gep, in)
					st := &ir.Instr{Op: ir.OpStore, Ty: ir.Void, Args: []ir.Value{lane, gep}}
					b.InsertBefore(st, in)
				}
				b.Remove(in)
				return true
			}
		}
		return false
	}
	switch {
	case in.Op == ir.OpLoad:
		base := castLanePtr(b, in, in.Args[0], vt.Elem)
		lanes := make([]ir.Value, vt.Len)
		for k := range lanes {
			gep := &ir.Instr{Op: ir.OpGEP, Ty: ir.PointerTo(vt.Elem), Elem: vt.Elem,
				Args: []ir.Value{base, ir.I64Const(int64(k))}}
			b.InsertBefore(gep, in)
			ld := &ir.Instr{Op: ir.OpLoad, Ty: vt.Elem, Args: []ir.Value{gep}}
			b.InsertBefore(ld, in)
			lanes[k] = ld
		}
		replaceVector(f, b, in, lanes, vt)
		return true
	case ir.IsBinaryOp(in.Op):
		la := explodeVector(f, b, in, in.Args[0], vt)
		lb := explodeVector(f, b, in, in.Args[1], vt)
		lanes := make([]ir.Value, vt.Len)
		for k := range lanes {
			op := &ir.Instr{Op: in.Op, Ty: vt.Elem, Args: []ir.Value{la[k], lb[k]}}
			b.InsertBefore(op, in)
			lanes[k] = op
		}
		replaceVector(f, b, in, lanes, vt)
		return true
	}
	return false
}

// castLanePtr converts a vector pointer to an element pointer.
func castLanePtr(b *ir.Block, pos *ir.Instr, p ir.Value, elem ir.Type) ir.Value {
	want := ir.PointerTo(elem)
	if p.Type().Equal(want) {
		return p
	}
	bc := &ir.Instr{Op: ir.OpBitcast, Ty: want, Args: []ir.Value{p}}
	b.InsertBefore(bc, pos)
	return bc
}

// explodeVector extracts all lanes of a vector value before pos.
func explodeVector(f *ir.Func, b *ir.Block, pos *ir.Instr, v ir.Value, vt *ir.VectorType) []ir.Value {
	lanes := make([]ir.Value, vt.Len)
	for k := range lanes {
		ee := &ir.Instr{Op: ir.OpExtractElement, Ty: vt.Elem,
			Args: []ir.Value{v, ir.I64Const(int64(k))}}
		b.InsertBefore(ee, pos)
		lanes[k] = ee
	}
	return lanes
}

// replaceVector rebuilds a vector value from lanes (via insertelement) and
// substitutes it for in.
func replaceVector(f *ir.Func, b *ir.Block, in *ir.Instr, lanes []ir.Value, vt *ir.VectorType) {
	var cur ir.Value = ir.NewUndef(vt)
	for k, lane := range lanes {
		ie := &ir.Instr{Op: ir.OpInsertElement, Ty: vt,
			Args: []ir.Value{cur, lane, ir.I64Const(int64(k))}}
		b.InsertBefore(ie, in)
		cur = ie
	}
	ir.ReplaceAllUses(f, in, cur)
	b.Remove(in)
}

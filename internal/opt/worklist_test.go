package opt_test

import (
	"context"
	"testing"

	"lasagne/internal/backend"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/lifter"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
)

// liftWorkload compiles workloadSrc, lowers to x86-64, lifts, and places
// fences — the exact input shape RunPipeline sees inside the translator.
// Lifting the same binary twice produces byte-identical modules, so the test
// can run two pipeline strategies on independent copies.
func liftWorkload(t *testing.T) *ir.Module {
	t.Helper()
	orig, err := minic.Compile("t", workloadSrc)
	if err != nil {
		t.Fatal(err)
	}
	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	m, err := lifter.Lift(bin)
	if err != nil {
		t.Fatal(err)
	}
	fences.Place(m, fences.Options{SkipStackAccesses: true})
	return m
}

// TestWorklistPipelineMatchesPassMajor pins the equivalence RunPipeline's
// doc comment promises: the function-major changed-set worklist produces
// byte-identical IR to the naive pass-major sweep that unconditionally runs
// every pass over every function in pipeline order. The worklist only skips
// a pass when it just fixpointed on exactly the current body, and passes are
// function-local, so any divergence means a pass lied about its changed
// result or observed another function.
func TestWorklistPipelineMatchesPassMajor(t *testing.T) {
	worklist := liftWorkload(t)
	if err := opt.RunPipeline(worklist, opt.StandardPipeline, true); err != nil {
		t.Fatal(err)
	}

	naive := liftWorkload(t)
	for _, name := range opt.StandardPipeline {
		if _, err := opt.Run(naive, name); err != nil {
			t.Fatal(err)
		}
		if err := ir.Verify(naive); err != nil {
			t.Fatalf("module invalid after %s: %v", name, err)
		}
	}

	if got, want := worklist.String(), naive.String(); got != want {
		t.Errorf("worklist pipeline diverged from the pass-major sweep:\n--- pass-major ---\n%s--- worklist ---\n%s",
			want, got)
	}
}

// TestPipelineWithModulePassBarrier runs a pipeline with ipsccp spliced into
// the middle: the module pass must act as a barrier between function-local
// segments and the combined result must match applying the same sequence
// pass-major.
func TestPipelineWithModulePassBarrier(t *testing.T) {
	names := []string{"mem2reg", "sccp", "ipsccp", "instcombine", "dce"}

	a := liftWorkload(t)
	if err := opt.RunPipeline(a, names, true); err != nil {
		t.Fatal(err)
	}

	b := liftWorkload(t)
	for _, name := range names {
		if _, err := opt.Run(b, name); err != nil {
			t.Fatal(err)
		}
	}

	if a.String() != b.String() {
		t.Error("pipeline with a module-pass barrier diverged from the pass-major sweep")
	}
}

// TestFuncPipelineRejectsModulePass: module-level passes cannot run inside
// the per-function (cached, parallel) pipeline.
func TestFuncPipelineRejectsModulePass(t *testing.T) {
	m := liftWorkload(t)
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		err := opt.RunFuncPipeline(context.Background(), f, []string{"ipsccp"}, false)
		if err == nil {
			t.Fatal("RunFuncPipeline accepted a module-level pass")
		}
		break
	}
}

package opt

import (
	"lasagne/internal/ir"
)

// Mem2Reg promotes allocas whose only uses are same-typed loads and stores
// into SSA registers, inserting phi nodes at dominance frontiers (the
// classic algorithm). Escaping allocas — address taken by ptrtoint, passed
// to calls, cast to other pointer types, or accessed atomically — are left
// in memory.
func Mem2Reg(f *ir.Func) bool {
	if len(f.Blocks) == 0 {
		return false
	}
	removeUnreachable(f)
	uses := ir.ComputeUses(f)
	var candidates []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && len(in.Args) == 0 && promotable(in, uses) {
				candidates = append(candidates, in)
			}
		}
	}
	if len(candidates) == 0 {
		return false
	}

	dt := ir.ComputeDomTree(f)
	df := ir.DominanceFrontier(f, dt)

	for _, a := range candidates {
		promoteAlloca(f, a, dt, df, uses)
	}
	return true
}

// promotable reports whether every use of the alloca is a non-atomic load
// of the element type or a store of the element type *to* it.
func promotable(a *ir.Instr, uses ir.Uses) bool {
	if ir.IsVector(a.Elem) {
		return false
	}
	for _, u := range uses[a] {
		switch u.Op {
		case ir.OpLoad:
			if u.Order != ir.NotAtomic || !u.Ty.Equal(a.Elem) {
				return false
			}
		case ir.OpStore:
			// The alloca must be the address, not the stored value.
			if u.Args[1] != ir.Value(a) || u.Order != ir.NotAtomic || !u.Args[0].Type().Equal(a.Elem) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func promoteAlloca(f *ir.Func, a *ir.Instr, dt *ir.DomTree, df map[*ir.Block][]*ir.Block, uses ir.Uses) {
	// Blocks containing stores (definitions).
	defBlocks := map[*ir.Block]bool{}
	for _, u := range uses[a] {
		if u.Op == ir.OpStore {
			defBlocks[u.Parent] = true
		}
	}

	// Phi placement via iterated dominance frontier. The worklist is seeded
	// in block layout order so phi discovery follows the same sequence on
	// every run.
	phiBlocks := map[*ir.Block]*ir.Instr{}
	work := make([]*ir.Block, 0, len(defBlocks))
	for _, b := range f.Blocks {
		if defBlocks[b] {
			work = append(work, b)
		}
	}
	inWork := map[*ir.Block]bool{}
	for _, b := range work {
		inWork[b] = true
	}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, fb := range df[b] {
			if _, done := phiBlocks[fb]; done {
				continue
			}
			phi := &ir.Instr{Op: ir.OpPhi, Ty: a.Elem}
			if len(fb.Instrs) > 0 {
				fb.InsertBefore(phi, fb.Instrs[0])
			} else {
				fb.Append(phi)
			}
			phiBlocks[fb] = phi
			if !inWork[fb] {
				inWork[fb] = true
				work = append(work, fb)
			}
		}
	}

	// Rename pass: walk the dominator tree carrying the current value.
	var rename func(b *ir.Block, cur ir.Value)
	rename = func(b *ir.Block, cur ir.Value) {
		if phi, ok := phiBlocks[b]; ok {
			cur = phi
		}
		for _, in := range append([]*ir.Instr(nil), b.Instrs...) {
			switch {
			case in.Op == ir.OpLoad && in.Args[0] == ir.Value(a):
				if cur == nil {
					cur = ir.NewUndef(a.Elem)
				}
				ir.ReplaceAllUses(f, in, cur)
				b.Remove(in)
			case in.Op == ir.OpStore && in.Args[1] == ir.Value(a):
				cur = in.Args[0]
				b.Remove(in)
			}
		}
		seen := map[*ir.Block]bool{}
		for _, s := range b.Succs() {
			if seen[s] {
				continue
			}
			seen[s] = true
			if phi, ok := phiBlocks[s]; ok {
				v := cur
				if v == nil {
					v = ir.NewUndef(a.Elem)
				}
				ir.AddIncoming(phi, v, b)
			}
		}
		for _, child := range dt.Children[b] {
			rename(child, cur)
		}
	}
	rename(f.Entry(), nil)

	// Phis in unreachable blocks got no incoming edges; leave them — ADCE /
	// simplifycfg removes unreachable blocks. Finally drop the alloca.
	a.Parent.Remove(a)

	// Prune phis whose incoming edges are fewer than predecessors (can
	// happen when a predecessor is unreachable): fill with undef.
	for b, phi := range phiBlocks {
		preds := b.Preds()
		if len(phi.Args) == len(preds) {
			continue
		}
		have := map[*ir.Block]bool{}
		for _, ib := range phi.Blocks {
			have[ib] = true
		}
		for _, p := range preds {
			if !have[p] {
				ir.AddIncoming(phi, ir.NewUndef(a.Elem), p)
			}
		}
	}
}

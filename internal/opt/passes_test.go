package opt

import (
	"strings"
	"testing"

	"lasagne/internal/ir"
)

func countOp(f *ir.Func, op ir.Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// interpRun executes @main and returns (result, output).
func interpRun(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	if err := ir.Verify(m); err != nil {
		t.Fatalf("verify: %v\n%s", err, m)
	}
	ip := ir.NewInterp(m)
	got, err := ip.Run("main")
	if err != nil {
		t.Fatalf("run: %v\n%s", err, m)
	}
	return got
}

func TestMem2RegPromotesDiamond(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	join := f.NewBlock("join")
	b := ir.NewBuilder(entry)
	slot := b.Alloca(ir.I64)
	b.Store(ir.I64Const(0), slot)
	cond := b.ICmp(ir.PredSGT, f.Params[0], ir.I64Const(10))
	b.CondBr(cond, thenB, elseB)
	b.SetBlock(thenB)
	b.Store(ir.I64Const(111), slot)
	b.Br(join)
	b.SetBlock(elseB)
	b.Store(ir.I64Const(222), slot)
	b.Br(join)
	b.SetBlock(join)
	v := b.Load(slot)
	b.Ret(v)

	if !Mem2Reg(f) {
		t.Fatal("mem2reg did nothing")
	}
	if countOp(f, ir.OpAlloca) != 0 {
		t.Fatalf("alloca not promoted:\n%s", f)
	}
	if countOp(f, ir.OpPhi) != 1 {
		t.Fatalf("expected one phi:\n%s", f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 20); got != 111 {
		t.Fatalf("main(20) = %d", got)
	}
	if got, _ := ip.Run("main", 5); got != 222 {
		t.Fatalf("main(5) = %d", got)
	}
}

func TestMem2RegSkipsEscaping(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	slot := b.Alloca(ir.I64)
	b.PtrToInt(slot, ir.I64) // escape
	b.Store(ir.I64Const(1), slot)
	b.Ret(b.Load(slot))
	Mem2Reg(f)
	if countOp(f, ir.OpAlloca) != 1 {
		t.Fatal("escaping alloca must not be promoted")
	}
}

func TestInstCombineFoldsChains(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	x := b.Add(f.Params[0], ir.I64Const(0))              // x+0 -> x
	y := b.Mul(x, ir.I64Const(1))                        // x*1 -> x
	z := b.Add(b.Add(y, ir.I64Const(3)), ir.I64Const(4)) // fold to x+7
	w := b.Xor(z, z)                                     // -> 0
	r := b.Or(b.Add(z, w), ir.I64Const(0))               // -> z
	b.Ret(r)
	InstCombine(f)
	// Expect: exactly one add (x+7) and the ret.
	if n := countOp(f, ir.OpAdd); n != 1 {
		t.Fatalf("expected 1 add, have %d:\n%s", n, f)
	}
	if countOp(f, ir.OpMul)+countOp(f, ir.OpXor)+countOp(f, ir.OpOr) != 0 {
		t.Fatalf("dead ops survive:\n%s", f)
	}
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 10); got != 17 {
		t.Fatalf("main(10) = %d, want 17", got)
	}
}

func TestInstCombineCollapsesCasts(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	g := m.NewGlobal("g", ir.I64)
	i := b.PtrToInt(g, ir.I64)
	p := b.IntToPtr(i, ir.PointerTo(ir.I64)) // -> g
	b.Store(ir.I64Const(5), p)
	v := b.Load(g)
	b.Ret(v)
	InstCombine(f)
	if countOp(f, ir.OpIntToPtr)+countOp(f, ir.OpPtrToInt) != 0 {
		t.Fatalf("casts survive:\n%s", f)
	}
	if got := interpRun(t, m); got != 5 {
		t.Fatalf("got %d", got)
	}
}

func TestSCCPFoldsBranch(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	entry := f.NewBlock("entry")
	dead := f.NewBlock("dead")
	live := f.NewBlock("live")
	b := ir.NewBuilder(entry)
	c := b.ICmp(ir.PredSLT, ir.I64Const(3), ir.I64Const(2)) // false
	b.CondBr(c, dead, live)
	b.SetBlock(dead)
	b.Ret(ir.I64Const(666))
	b.SetBlock(live)
	b.Ret(ir.I64Const(42))
	SCCP(f)
	if len(f.Blocks) != 2 {
		t.Fatalf("dead block not removed (%d blocks):\n%s", len(f.Blocks), f)
	}
	if got := interpRun(t, m); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestSCCPThroughPhi(t *testing.T) {
	// A phi whose incoming values are the same constant along all
	// executable edges becomes that constant.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I1))
	entry := f.NewBlock("entry")
	a := f.NewBlock("a")
	c := f.NewBlock("c")
	j := f.NewBlock("j")
	b := ir.NewBuilder(entry)
	b.CondBr(f.Params[0], a, c)
	b.SetBlock(a)
	b.Br(j)
	b.SetBlock(c)
	b.Br(j)
	b.SetBlock(j)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, ir.I64Const(9), a)
	ir.AddIncoming(phi, ir.I64Const(9), c)
	b.Ret(b.Add(phi, ir.I64Const(1)))
	SCCP(f)
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 1); got != 10 {
		t.Fatalf("got %d", got)
	}
	// The add should have been folded to the constant 10.
	if countOp(f, ir.OpAdd) != 0 {
		t.Fatalf("add not folded:\n%s", f)
	}
}

func TestGVNForwardsLoads(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Store(ir.I64Const(4), g)
	v1 := b.Load(g) // RAW: forwarded from the store
	v2 := b.Load(g) // RAR: forwarded from v1
	b.Ret(b.Add(v1, v2))
	GVN(f)
	if countOp(f, ir.OpLoad) != 0 {
		t.Fatalf("loads survive:\n%s", f)
	}
	if got := interpRun(t, m); got != 8 {
		t.Fatalf("got %d", got)
	}
}

func TestGVNRespectsFencesOnShared(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	v1 := b.Load(g)
	b.Fence(ir.FenceSC)
	v2 := b.Load(g) // must NOT be forwarded across the fence (shared)
	b.Ret(b.Add(v1, v2))
	GVN(f)
	if countOp(f, ir.OpLoad) != 2 {
		t.Fatalf("forwarded a shared load across a fence:\n%s", f)
	}
}

func TestGVNForwardsPrivateAcrossFence(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	slot := b.Alloca(ir.I64)
	b.Store(ir.I64Const(3), slot)
	b.Fence(ir.FenceSC)
	v := b.Load(slot) // private: forwarding across the fence is fine
	b.Ret(v)
	GVN(f)
	if countOp(f, ir.OpLoad) != 0 {
		t.Fatalf("private load not forwarded:\n%s", f)
	}
	if got := interpRun(t, m); got != 3 {
		t.Fatalf("got %d", got)
	}
}

func TestGVNPureCSE(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	a1 := b.Add(f.Params[0], ir.I64Const(5))
	a2 := b.Add(f.Params[0], ir.I64Const(5)) // duplicate
	b.Ret(b.Mul(a1, a2))
	GVN(f)
	if countOp(f, ir.OpAdd) != 1 {
		t.Fatalf("CSE failed:\n%s", f)
	}
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 1); got != 36 {
		t.Fatalf("got %d", got)
	}
}

func TestDSEKillsOverwrittenStore(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Store(ir.I64Const(1), g)
	b.Store(ir.I64Const(2), g)
	b.Ret(b.Load(g))
	DSE(f)
	if countOp(f, ir.OpStore) != 1 {
		t.Fatalf("dead store survives:\n%s", f)
	}
	if got := interpRun(t, m); got != 2 {
		t.Fatalf("got %d", got)
	}
}

func TestDSEBlockedBySharedFence(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.Void))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Store(ir.I64Const(1), g)
	b.Fence(ir.FenceWW)
	b.Store(ir.I64Const(2), g)
	b.Ret(nil)
	DSE(f)
	if countOp(f, ir.OpStore) != 2 {
		t.Fatalf("eliminated a shared store across a fence:\n%s", f)
	}
}

func TestDSEBlockedByAliasingLoad(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Store(ir.I64Const(1), g)
	v := b.Load(g)
	b.Store(ir.I64Const(2), g)
	b.Ret(v)
	DSE(f)
	if countOp(f, ir.OpStore) != 2 {
		t.Fatalf("eliminated a store that feeds a load:\n%s", f)
	}
	if got := interpRun(t, m); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder(entry)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	acc := b.Phi(ir.I64)
	ir.AddIncoming(i, ir.I64Const(0), entry)
	ir.AddIncoming(acc, ir.I64Const(0), entry)
	inv := b.Mul(f.Params[0], ir.I64Const(3)) // loop-invariant
	acc2 := b.Add(acc, inv)
	i2 := b.Add(i, ir.I64Const(1))
	ir.AddIncoming(i, i2, loop)
	ir.AddIncoming(acc, acc2, loop)
	b.CondBr(b.ICmp(ir.PredSLT, i2, ir.I64Const(4)), loop, exit)
	b.SetBlock(exit)
	b.Ret(acc2)

	if !LICM(f) {
		t.Fatalf("nothing hoisted:\n%s", f)
	}
	if inv.Parent != entry {
		t.Fatalf("invariant mul not in preheader:\n%s", f)
	}
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 5); got != 60 {
		t.Fatalf("got %d, want 60", got)
	}
}

func TestLICMDoesNotHoistMemoryOrDiv(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder(entry)
	b.Br(loop)
	b.SetBlock(loop)
	i := b.Phi(ir.I64)
	ir.AddIncoming(i, ir.I64Const(0), entry)
	ld := b.Load(g)                                      // memory: must stay
	q := b.Bin(ir.OpSDiv, ir.I64Const(100), f.Params[0]) // div by non-const: must stay
	i2 := b.Add(i, ir.I64Const(1))
	ir.AddIncoming(i, i2, loop)
	b.CondBr(b.ICmp(ir.PredSLT, i2, ld), loop, exit)
	b.SetBlock(exit)
	b.Ret(q)
	LICM(f)
	if ld.Parent != loop || q.Parent != loop {
		t.Fatalf("hoisted an unsafe instruction:\n%s", f)
	}
}

func TestSimplifyCFGMergesAndFolds(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	entry := f.NewBlock("entry")
	mid := f.NewBlock("mid")
	tail := f.NewBlock("tail")
	b := ir.NewBuilder(entry)
	b.CondBr(ir.I1Const(true), mid, tail)
	b.SetBlock(mid)
	b.Br(tail)
	b.SetBlock(tail)
	b.Ret(ir.I64Const(7))
	SimplifyCFG(f)
	if len(f.Blocks) != 1 {
		t.Fatalf("expected a single block, have %d:\n%s", len(f.Blocks), f)
	}
	if got := interpRun(t, m); got != 7 {
		t.Fatalf("got %d", got)
	}
}

func TestSROASplitsFrame(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	frame := b.Alloca(ir.ArrayOf(ir.I8, 32))
	base := b.Bitcast(frame, ir.PointerTo(ir.I8))
	s0 := b.Bitcast(b.GEP(ir.I8, base, ir.I64Const(0)), ir.PointerTo(ir.I64))
	s8 := b.Bitcast(b.GEP(ir.I8, base, ir.I64Const(8)), ir.PointerTo(ir.I64))
	b.Store(ir.I64Const(30), s0)
	b.Store(ir.I64Const(12), s8)
	v0 := b.Load(s0)
	v8 := b.Load(s8)
	b.Ret(b.Add(v0, v8))
	if !SROA(f) {
		t.Fatalf("SROA did nothing:\n%s", f)
	}
	// After SROA the byte-array alloca is gone; mem2reg can finish the job.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpAlloca {
				if _, isArr := in.Elem.(*ir.ArrayType); isArr {
					t.Fatalf("frame alloca survives:\n%s", f)
				}
			}
		}
	}
	Mem2Reg(f)
	if countOp(f, ir.OpAlloca) != 0 {
		t.Fatalf("scalars not promoted:\n%s", f)
	}
	if got := interpRun(t, m); got != 42 {
		t.Fatalf("got %d", got)
	}
}

func TestSROASkipsEscapingFrame(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	frame := b.Alloca(ir.ArrayOf(ir.I8, 32))
	base := b.Bitcast(frame, ir.PointerTo(ir.I8))
	b.PtrToInt(base, ir.I64) // escape: lifted pre-refinement shape
	p := b.Bitcast(base, ir.PointerTo(ir.I64))
	b.Store(ir.I64Const(1), p)
	b.Ret(b.Load(p))
	if SROA(f) {
		t.Fatalf("SROA split an escaping frame:\n%s", f)
	}
}

func TestScalarizeVectors(t *testing.T) {
	m := ir.NewModule("t")
	v2 := ir.VectorOf(ir.F64, 2)
	g := m.NewGlobal("vec", v2)
	f := m.NewFunc("main", ir.Signature(ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	// Build a vector, add it to itself through memory.
	lanes := b.InsertElement(ir.NewUndef(v2), ir.FloatConst(ir.F64, 1.5), ir.I64Const(0))
	lanes2 := b.InsertElement(lanes, ir.FloatConst(ir.F64, 2.5), ir.I64Const(1))
	b.Store(lanes2, g)
	ld := b.Load(g)
	sum := b.Bin(ir.OpFAdd, ld, ld)
	e0 := b.ExtractElement(sum, ir.I64Const(0))
	e1 := b.ExtractElement(sum, ir.I64Const(1))
	total := b.FAdd(e0, e1)
	b.Ret(b.FPToSI(total, ir.I64))

	Scalarize(f)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if ir.IsVector(in.Ty) && in.Op != ir.OpInsertElement {
				if in.Op == ir.OpLoad || ir.IsBinaryOp(in.Op) {
					t.Fatalf("vector %s survives scalarization:\n%s", in.Op, f)
				}
			}
		}
	}
	InstCombine(f)
	if got := interpRun(t, m); got != 8 {
		t.Fatalf("got %d, want 8 (2*(1.5+2.5))", got)
	}
}

func TestReassociateExposesConstants(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64, ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	// (x + 10) + y: the constant should move outward so (x+y)+10 folds
	// further when y is later known.
	t1 := b.Add(f.Params[0], ir.I64Const(10))
	t2 := b.Add(t1, f.Params[1])
	b.Ret(t2)
	Reassociate(f)
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 1, 2); got != 13 {
		t.Fatalf("got %d", got)
	}
}

func TestADCERemovesDeadCycle(t *testing.T) {
	// A dead phi cycle that plain DCE cannot see.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64))
	entry := f.NewBlock("entry")
	loop := f.NewBlock("loop")
	exit := f.NewBlock("exit")
	b := ir.NewBuilder(entry)
	b.Br(loop)
	b.SetBlock(loop)
	dead := b.Phi(ir.I64)
	live := b.Phi(ir.I64)
	ir.AddIncoming(dead, ir.I64Const(0), entry)
	ir.AddIncoming(live, ir.I64Const(0), entry)
	dead2 := b.Add(dead, ir.I64Const(1)) // only feeds the dead phi
	live2 := b.Add(live, ir.I64Const(2))
	ir.AddIncoming(dead, dead2, loop)
	ir.AddIncoming(live, live2, loop)
	b.CondBr(b.ICmp(ir.PredSLT, live2, ir.I64Const(10)), loop, exit)
	b.SetBlock(exit)
	b.Ret(live2)

	ADCE(f)
	if countOp(f, ir.OpPhi) != 1 {
		t.Fatalf("dead phi cycle survives:\n%s", f)
	}
	if got := interpRun(t, m); got != 10 {
		t.Fatalf("got %d", got)
	}
}

func TestPipelineIdempotentOnOptimizedCode(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I64))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Ret(b.Add(f.Params[0], ir.I64Const(1)))
	if err := RunPipeline(m, StandardPipeline, true); err != nil {
		t.Fatal(err)
	}
	size1 := m.NumInstrs()
	if err := RunPipeline(m, StandardPipeline, true); err != nil {
		t.Fatal(err)
	}
	if m.NumInstrs() != size1 {
		t.Fatalf("pipeline not idempotent: %d -> %d", size1, m.NumInstrs())
	}
}

func TestUnknownPassRejected(t *testing.T) {
	m := ir.NewModule("t")
	if _, err := Run(m, "nonexistent"); err == nil || !strings.Contains(err.Error(), "unknown pass") {
		t.Fatalf("expected unknown-pass error, got %v", err)
	}
}

func TestSimplifyCFGSpeculatesTriangle(t *testing.T) {
	// if (c) v = load g; use phi(v, 0) -- the load is speculated and the
	// phi becomes a select (§7.2 speculative load introduction).
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I1))
	a := f.NewBlock("entry")
	bb := f.NewBlock("then")
	c := f.NewBlock("join")
	b := ir.NewBuilder(a)
	b.CondBr(f.Params[0], bb, c)
	b.SetBlock(bb)
	ld := b.Load(g)
	v2 := b.Add(ld, ir.I64Const(1))
	b.Br(c)
	b.SetBlock(c)
	phi := b.Phi(ir.I64)
	ir.AddIncoming(phi, v2, bb)
	ir.AddIncoming(phi, ir.I64Const(0), a)
	b.Ret(phi)

	if !SimplifyCFG(f) {
		t.Fatalf("nothing simplified:\n%s", f)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("triangle not flattened (%d blocks):\n%s", len(f.Blocks), f)
	}
	if countOp(f, ir.OpSelect) != 1 {
		t.Fatalf("expected a select:\n%s", f)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("%v\n%s", err, f)
	}
	ip := ir.NewInterp(m)
	// g = 0 initially, so taken path yields 1, untaken 0.
	if got, _ := ip.Run("main", 1); got != 1 {
		t.Fatalf("main(true) = %d", got)
	}
	if got, _ := ip.Run("main", 0); got != 0 {
		t.Fatalf("main(false) = %d", got)
	}
}

func TestSpeculationSkipsSideEffects(t *testing.T) {
	// A store in the then-block must not be speculated.
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.I64, ir.I1))
	a := f.NewBlock("entry")
	bb := f.NewBlock("then")
	c := f.NewBlock("join")
	b := ir.NewBuilder(a)
	b.CondBr(f.Params[0], bb, c)
	b.SetBlock(bb)
	b.Store(ir.I64Const(5), g)
	b.Br(c)
	b.SetBlock(c)
	b.Ret(b.Load(g))
	SimplifyCFG(f)
	ip := ir.NewInterp(m)
	if got, _ := ip.Run("main", 0); got != 0 {
		t.Fatalf("store was speculated: main(false) = %d\n%s", got, f)
	}
	if got, _ := ip.Run("main", 1); got != 5 {
		t.Fatalf("main(true) = %d", got)
	}
}

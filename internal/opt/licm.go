package opt

import "lasagne/internal/ir"

// LICM hoists loop-invariant pure computations out of natural loops into
// the unique loop pre-header. Memory accesses and fences are never moved,
// which keeps the pass trivially LIMM-correct; division is only hoisted
// when the divisor is a non-zero constant (speculation safety).
func LICM(f *ir.Func) bool {
	removeUnreachable(f)
	dt := ir.ComputeDomTree(f)
	changed := false
	for _, loop := range findLoops(f, dt) {
		pre := uniqueOutsidePred(loop)
		if pre == nil || pre.Terminator() == nil {
			continue
		}
		inLoop := func(v ir.Value) bool {
			in, ok := v.(*ir.Instr)
			return ok && in.Parent != nil && loop.body[in.Parent]
		}
		body := loop.orderedBody(f)
		// Iterate: hoisting one instruction can make others invariant.
		// Blocks are visited in layout order so hoisted instructions land in
		// the pre-header in a deterministic sequence.
		for again := true; again; {
			again = false
			for _, blk := range body {
				for _, in := range append([]*ir.Instr(nil), blk.Instrs...) {
					if !hoistable(in) {
						continue
					}
					invariant := true
					for _, a := range in.Args {
						if inLoop(a) {
							invariant = false
							break
						}
					}
					if !invariant {
						continue
					}
					blk.Remove(in)
					pre.InsertBefore(in, pre.Terminator())
					again = true
					changed = true
				}
			}
		}
		if promoteLoopLoads(f, loop, pre, inLoop) {
			changed = true
		}
	}
	return changed
}

// promoteLoopLoads hoists loads of thread-private (non-escaping alloca)
// addresses that are never stored within the loop: the loaded value is
// loop-invariant, and because the memory is private no other thread or
// callee can modify it. Multiple loads of the same address collapse into
// the single hoisted load — the scalar-promotion half of LLVM's LICM.
func promoteLoopLoads(f *ir.Func, l *loopInfo, pre *ir.Block, inLoop func(ir.Value) bool) bool {
	// Addresses stored to inside the loop (by identified base object).
	storedTo := map[ir.Value]bool{}
	hasAtomicOrCall := false
	body := l.orderedBody(f)
	for _, blk := range body {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.OpStore:
				storedTo[in.Args[1]] = true
			case ir.OpRMW, ir.OpCmpXchg:
				hasAtomicOrCall = true
			case ir.OpCall:
				// Calls cannot touch non-escaping allocas; nothing to do.
			}
		}
	}
	changed := false
	hoisted := map[ir.Value]*ir.Instr{}
	for _, blk := range body {
		for _, in := range append([]*ir.Instr(nil), blk.Instrs...) {
			if in.Op != ir.OpLoad || in.Order != ir.NotAtomic || in.Parent == nil {
				continue
			}
			addr := in.Args[0]
			if inLoop(addr) || !isPrivate(f, addr) || hasAtomicOrCall {
				continue
			}
			// Any store in the loop to a may-aliasing address of the same
			// private object blocks promotion.
			blocked := false
			for sa := range storedTo {
				if mayAlias(sa, addr) && sameBase(sa, addr) {
					blocked = true
					break
				}
			}
			if blocked {
				continue
			}
			if prev, ok := hoisted[addr]; ok && prev.Ty.Equal(in.Ty) {
				ir.ReplaceAllUses(f, in, prev)
				blk.Remove(in)
				changed = true
				continue
			}
			blk.Remove(in)
			pre.InsertBefore(in, pre.Terminator())
			hoisted[addr] = in
			changed = true
		}
	}
	return changed
}

// sameBase reports whether two pointers share the same identified object.
func sameBase(a, b ir.Value) bool {
	oa, ob := baseObject(a), baseObject(b)
	return oa != nil && oa == ob
}

// hoistable reports whether an instruction is pure and safe to execute
// speculatively.
func hoistable(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpSDiv, ir.OpUDiv, ir.OpSRem, ir.OpURem:
		c, ok := ir.ConstIntValue(in.Args[1])
		return ok && c != 0
	case ir.OpPhi, ir.OpAlloca:
		return false
	}
	if ir.IsBinaryOp(in.Op) || ir.IsCast(in.Op) {
		return true
	}
	switch in.Op {
	case ir.OpICmp, ir.OpFCmp, ir.OpGEP, ir.OpSelect:
		return true
	}
	return false
}

// loopInfo is one natural loop.
type loopInfo struct {
	header *ir.Block
	body   map[*ir.Block]bool
}

// orderedBody returns the loop's blocks in function layout order, so passes
// that move instructions between blocks behave identically on every run.
func (l *loopInfo) orderedBody(f *ir.Func) []*ir.Block {
	out := make([]*ir.Block, 0, len(l.body))
	for _, b := range f.Blocks {
		if l.body[b] {
			out = append(out, b)
		}
	}
	return out
}

// findLoops identifies natural loops from back edges (tail -> header where
// header dominates tail).
func findLoops(f *ir.Func, dt *ir.DomTree) []*loopInfo {
	byHeader := map[*ir.Block]*loopInfo{}
	var order []*ir.Block
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if !dt.Dominates(s, b) {
				continue
			}
			// Back edge b -> s.
			li := byHeader[s]
			if li == nil {
				li = &loopInfo{header: s, body: map[*ir.Block]bool{s: true}}
				byHeader[s] = li
				order = append(order, s)
			}
			// Collect body: nodes that reach the tail without passing the
			// header.
			var stack []*ir.Block
			if !li.body[b] {
				li.body[b] = true
				stack = append(stack, b)
			}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				for _, p := range n.Preds() {
					if !li.body[p] {
						li.body[p] = true
						stack = append(stack, p)
					}
				}
			}
		}
	}
	var out []*loopInfo
	for _, h := range order {
		out = append(out, byHeader[h])
	}
	return out
}

// uniqueOutsidePred returns the single predecessor of the loop header that
// lies outside the loop, or nil.
func uniqueOutsidePred(l *loopInfo) *ir.Block {
	var pre *ir.Block
	for _, p := range l.header.Preds() {
		if l.body[p] {
			continue
		}
		if pre != nil {
			return nil
		}
		pre = p
	}
	return pre
}

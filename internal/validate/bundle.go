package validate

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"lasagne/internal/core/cache"
	"lasagne/internal/opt"
)

// Bundle kinds.
const (
	// KindPass: a checkpoint violation attributed to one opt pass on one
	// function. Carries the module shape and the exact pre-pass body, so
	// ReplayPass reproduces the failure with nothing but the bundle.
	KindPass = "pass"
	// KindDifferential: an output mismatch between the x86 input and the
	// translated Arm64 object. Carries the marshaled input object and the
	// diverging seeds; core.ReplayBundle re-translates and re-compares.
	KindDifferential = "differential"
)

// Bundle is a self-contained repro artifact written to -repro-dir when a
// validation checkpoint or the differential oracle fails. The JSON form is
// deliberately plain (byte fields base64-encoded by encoding/json) so a
// bundle can be attached to a bug report and replayed on another machine.
type Bundle struct {
	Kind string `json:"kind"`
	// Fingerprint records the pipeline version and config fingerprint of
	// the run that produced the bundle, so a replay on a different build is
	// flagged rather than silently diverging.
	Fingerprint string `json:"fingerprint"`
	Failure     string `json:"failure"` // original failure message (includes seed/pass)

	// Pass-kind payload.
	Func       string   `json:"func,omitempty"`
	Pass       string   `json:"pass,omitempty"`
	Opts       Opts     `json:"opts"`                 // checkpoint options at the failing checkpoint
	Violations []string `json:"violations,omitempty"` // ir.VerifyAll on the post-pass body
	Shape      []byte   `json:"shape,omitempty"`      // cache.EncodeModuleShape
	PreBody    []byte   `json:"pre_body,omitempty"`   // cache.EncodeBody of the pre-pass body
	Reduced    []byte   `json:"reduced,omitempty"`    // minimized pre-pass body, when the reducer ran

	// Differential-kind payload.
	Input    []byte   `json:"input,omitempty"` // obj.File.Marshal of the x86 input
	Seeds    []int64  `json:"seeds,omitempty"` // diverging data seeds
	Passes   []string `json:"passes,omitempty"`
	MaxSteps int64    `json:"max_steps,omitempty"`
	NThreads int      `json:"nthreads,omitempty"`
}

// Write stores the bundle under dir, named by kind, subject and a content
// hash, and returns the path.
func (b *Bundle) Write(dir string) (string, error) {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	subject := b.Func
	if b.Pass != "" {
		subject += "-" + b.Pass
	}
	if subject == "" {
		subject = "module"
	}
	path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.json", b.Kind, subject, hex.EncodeToString(sum[:6])))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// Load reads a bundle written by Write.
func Load(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	b := &Bundle{}
	if err := json.Unmarshal(data, b); err != nil {
		return nil, fmt.Errorf("validate: corrupt bundle %s: %w", path, err)
	}
	if b.Kind != KindPass && b.Kind != KindDifferential {
		return nil, fmt.Errorf("validate: bundle %s has unknown kind %q", path, b.Kind)
	}
	return b, nil
}

// ReplayPass replays a pass-kind bundle standalone: it rebuilds the
// skeleton module from the recorded shape, decodes the pre-pass body into
// the failing function, re-runs the single culprit pass, and re-runs the
// checkpoint that originally fired. The first return value is the
// reproduced failure (nil when the bundle no longer reproduces — e.g. the
// pass has since been fixed); the second reports problems with the bundle
// itself.
func ReplayPass(b *Bundle) (failure, err error) {
	if b.Kind != KindPass {
		return nil, fmt.Errorf("validate: ReplayPass on a %q bundle", b.Kind)
	}
	m, err := cache.DecodeModuleShape(b.Shape)
	if err != nil {
		return nil, err
	}
	f := m.Func(b.Func)
	if f == nil {
		return nil, fmt.Errorf("validate: bundle function @%s missing from its own shape", b.Func)
	}
	blocks, err := cache.DecodeBody(f, b.PreBody)
	if err != nil {
		return nil, err
	}
	f.External = false
	f.RestoreBody(blocks)
	if pre := CheckFunc(f, b.Opts); pre != nil {
		return nil, fmt.Errorf("validate: bundle pre-pass body is not checkpoint-clean: %w", pre)
	}
	if _, err := opt.ApplyPass(f, b.Pass); err != nil {
		return nil, err
	}
	return CheckFunc(f, b.Opts), nil
}

package validate

import (
	"lasagne/internal/ir"
)

// ReduceFunc shrinks f in place while keep(f) stays true and the function
// stays verifier-clean, so the result is a minimal valid reproducer of
// whatever property keep tests (typically "this pass still breaks this
// body"). The reducer alternates three delta-debugging strategies until a
// full round makes no progress: conditional branches are simplified to
// unconditional ones (with phi arguments dropped for the removed edges),
// unreachable blocks are deleted, and instructions are removed in
// binary-shrinking chunks with their uses replaced by undef. Every trial is
// checked with ir.VerifyFunc before keep, and rolled back via the body
// clone when either rejects it. It returns the number of instructions
// removed.
func ReduceFunc(f *ir.Func, keep func(*ir.Func) bool) int {
	if ir.VerifyFunc(f) != nil || !keep(f) {
		return 0
	}
	before := f.NumInstrs()
	for progress := true; progress; {
		progress = false
		if reduceEdges(f, keep) {
			progress = true
		}
		if mergeLinearBlocks(f, keep) {
			progress = true
		}
		if reduceInstrs(f, keep) {
			progress = true
		}
	}
	return before - f.NumInstrs()
}

// trial applies mutate to f, keeping the result only if it remains
// verifier-clean and keep still holds; otherwise the saved body is
// restored. mutate returning false means "not applicable" and also rolls
// back.
func trial(f *ir.Func, keep func(*ir.Func) bool, mutate func() bool) bool {
	save := f.CloneBody()
	if mutate() && ir.VerifyFunc(f) == nil && keep(f) {
		return true
	}
	f.RestoreBody(save)
	return false
}

// reduceEdges tries to turn each conditional branch into an unconditional
// one (both directions), cleaning up the CFG after each attempt.
func reduceEdges(f *ir.Func, keep func(*ir.Func) bool) bool {
	changed := false
	for bi := 0; bi < len(f.Blocks); bi++ {
		for _, target := range []int{0, 1} {
			ok := trial(f, keep, func() bool {
				if bi >= len(f.Blocks) {
					return false
				}
				term := f.Blocks[bi].Terminator()
				if term == nil || term.Op != ir.OpCondBr || target >= len(term.Blocks) {
					return false
				}
				dst := term.Blocks[target]
				term.Op = ir.OpBr
				term.Args = nil
				term.Blocks = []*ir.Block{dst}
				cleanupCFG(f)
				return true
			})
			if ok {
				changed = true
				break // the terminator is no longer conditional
			}
		}
	}
	return changed
}

// cleanupCFG removes unreachable blocks, drops phi incomings whose edge no
// longer exists, and replaces references to instructions that vanished with
// undef so the trial body stays verifiable.
func cleanupCFG(f *ir.Func) {
	reach := ir.ReachableBlocks(f)
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept

	for _, b := range f.Blocks {
		preds := map[*ir.Block]bool{}
		for _, p := range b.Preds() {
			preds[p] = true
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			args := in.Args[:0]
			blocks := in.Blocks[:0]
			for k := range in.Blocks {
				if preds[in.Blocks[k]] {
					args = append(args, in.Args[k])
					blocks = append(blocks, in.Blocks[k])
				}
			}
			in.Args = args
			in.Blocks = blocks
		}
	}
	replaceUnknownDefs(f)
}

// replaceUnknownDefs substitutes undef for any operand whose defining
// instruction is no longer in the function (it lived in a removed block or
// was deleted by the instruction reducer).
func replaceUnknownDefs(f *ir.Func) {
	defined := map[*ir.Instr]bool{}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			defined[in] = true
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if d, ok := a.(*ir.Instr); ok && !defined[d] {
					in.Args[i] = &ir.Undef{Ty: d.Type()}
				}
			}
		}
	}
}

// mergeLinearBlocks splices single-predecessor branch targets into their
// predecessor, collapsing the br-chains that edge simplification leaves
// behind.
func mergeLinearBlocks(f *ir.Func, keep func(*ir.Func) bool) bool {
	changed := false
	for bi := 0; bi < len(f.Blocks); bi++ {
		ok := trial(f, keep, func() bool {
			if bi >= len(f.Blocks) {
				return false
			}
			b := f.Blocks[bi]
			term := b.Terminator()
			if term == nil || term.Op != ir.OpBr {
				return false
			}
			s := term.Blocks[0]
			if s == b || len(s.Preds()) != 1 {
				return false
			}
			// Single-predecessor phis are just renames of their one incoming.
			insts := append([]*ir.Instr(nil), s.Instrs...)
			for _, in := range insts {
				if in.Op != ir.OpPhi {
					break
				}
				if len(in.Args) != 1 {
					return false
				}
				replaceUses(f, in, in.Args[0])
				s.Remove(in)
			}
			b.Remove(term)
			for _, in := range append([]*ir.Instr(nil), s.Instrs...) {
				s.Remove(in)
				b.Append(in)
			}
			kept := f.Blocks[:0]
			for _, bb := range f.Blocks {
				if bb != s {
					kept = append(kept, bb)
				}
			}
			f.Blocks = kept
			// Phis downstream that named s as their incoming edge now come
			// from b.
			for _, bb := range f.Blocks {
				for _, in := range bb.Instrs {
					if in.Op != ir.OpPhi {
						break
					}
					for k := range in.Blocks {
						if in.Blocks[k] == s {
							in.Blocks[k] = b
						}
					}
				}
			}
			return true
		})
		if ok {
			changed = true
			bi-- // b may now end in another mergeable br
		}
	}
	return changed
}

func replaceUses(f *ir.Func, old *ir.Instr, with ir.Value) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = with
				}
			}
		}
	}
}

// reduceInstrs deletes non-terminator instructions in binary-shrinking
// chunks (classic ddmin): big bites first, single instructions last.
func reduceInstrs(f *ir.Func, keep func(*ir.Func) bool) bool {
	changed := false
	for chunk := f.NumInstrs(); chunk >= 1; chunk /= 2 {
		for start := 0; ; start += chunk {
			cands := candidates(f)
			if start >= len(cands) {
				break
			}
			end := start + chunk
			if end > len(cands) {
				end = len(cands)
			}
			ok := trial(f, keep, func() bool {
				cs := candidates(f)
				if start >= len(cs) {
					return false
				}
				e := start + chunk
				if e > len(cs) {
					e = len(cs)
				}
				for _, in := range cs[start:e] {
					in.Parent.Remove(in)
				}
				replaceUnknownDefs(f)
				return true
			})
			if ok {
				changed = true
				start -= chunk // the window now holds fresh candidates
			}
		}
	}
	return changed
}

// candidates lists every deletable (non-terminator) instruction in block
// order.
func candidates(f *ir.Func) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !in.IsTerminator() {
				out = append(out, in)
			}
		}
	}
	return out
}

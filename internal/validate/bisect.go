package validate

import "fmt"

// BisectFirstBad binary-searches the smallest prefix length n of passes for
// which fails(passes[:n]) reports true, assuming monotonicity: once a
// prefix fails, every longer prefix fails too (the miscompile persists —
// later passes do not un-break the function observably). The return value
// is the length of the first failing prefix, so passes[n-1] is the culprit
// pass; n == 0 means the failure predates the opt pipeline entirely
// (lifting, refinement or fence placement).
//
// fails is invoked O(log len(passes)) times, each typically a cheap
// re-translation of one function (warm after PR 4's content-addressed
// cache) plus the checkpoint or differential re-check that detected the
// original failure.
func BisectFirstBad(passes []string, fails func(prefix []string) (bool, error)) (int, error) {
	bad, err := fails(passes)
	if err != nil {
		return 0, err
	}
	if !bad {
		return 0, fmt.Errorf("validate: bisection precondition failed: full pipeline of %d passes does not reproduce the failure", len(passes))
	}
	if len(passes) == 0 {
		return 0, nil
	}
	if bad, err = fails(passes[:0]); err != nil {
		return 0, err
	} else if bad {
		return 0, nil
	}
	// Invariant: fails(passes[:lo]) is false, fails(passes[:hi]) is true.
	lo, hi := 0, len(passes)
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		bad, err := fails(passes[:mid])
		if err != nil {
			return 0, err
		}
		if bad {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi, nil
}

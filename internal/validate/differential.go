package validate

import (
	"fmt"

	"lasagne/internal/obj"
	"lasagne/internal/sim"
)

// DiffOptions configures a differential run.
type DiffOptions struct {
	// Seeds is the number of successfully compared inputs required (default
	// 32, the acceptance bar). Seeds that cannot be compared — either
	// simulator faulted, typically an x86 divide-by-zero on random data that
	// A64 SDIV maps to 0, or a budget ran out — are skipped and do not
	// count, up to a 4×Seeds attempt cap.
	Seeds int
	// StartSeed is the first data seed tried (default 0, the pristine image
	// as linked — always compared first so the program's own initializers
	// are part of every run).
	StartSeed int64
	// SeedList, when non-empty, overrides Seeds/StartSeed and compares
	// exactly these seeds: bisection uses it to re-check the seeds that
	// originally diverged.
	SeedList []int64
	// MaxSteps bounds each simulation (0 = sim.DefaultMaxSteps).
	MaxSteps int64
	// NThreads is the __nthreads value for both machines (0 = default).
	NThreads int
	// Engine selects the interpreter for both machines. The zero value is
	// sim.Threaded; pass sim.Reference to cross-check against the oracle.
	Engine sim.EngineKind
}

// SeedStatus classifies one seed's comparison.
type SeedStatus int

const (
	// SeedMatch: both simulators completed with identical output.
	SeedMatch SeedStatus = iota
	// SeedMismatch: both completed, outputs differ — a real translation bug.
	SeedMismatch
	// SeedSkipped: at least one simulator faulted or exceeded its budget, so
	// the outputs are incomparable (not evidence of a bug either way).
	SeedSkipped
)

func (s SeedStatus) String() string {
	switch s {
	case SeedMatch:
		return "match"
	case SeedMismatch:
		return "mismatch"
	case SeedSkipped:
		return "skipped"
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// SeedResult records one compared input. Every rendering includes the seed
// so any failure is reproducible from its log line.
type SeedResult struct {
	Seed   int64
	Status SeedStatus
	Detail string // mismatch diff or skip reason
	X86Out string
	ArmOut string
}

func (r SeedResult) String() string {
	if r.Detail != "" {
		return fmt.Sprintf("seed %d: %s: %s", r.Seed, r.Status, r.Detail)
	}
	return fmt.Sprintf("seed %d: %s", r.Seed, r.Status)
}

// DiffResult aggregates a differential run.
type DiffResult struct {
	Compared   int // seeds where both simulators completed
	Skipped    int
	Mismatches []SeedResult
	Results    []SeedResult // every seed tried, in order
}

// Ok reports whether the run compared at least one seed with no mismatch.
func (r *DiffResult) Ok() bool { return r.Compared > 0 && len(r.Mismatches) == 0 }

// Err summarizes the first mismatch (nil when Ok). The seed is in the
// message.
func (r *DiffResult) Err() error {
	if len(r.Mismatches) > 0 {
		return fmt.Errorf("validate: differential mismatch: %s", r.Mismatches[0])
	}
	if r.Compared == 0 {
		return fmt.Errorf("validate: differential compared 0 seeds (%d skipped); last: %s",
			r.Skipped, last(r.Results))
	}
	return nil
}

func last(rs []SeedResult) string {
	if len(rs) == 0 {
		return "none tried"
	}
	return rs[len(rs)-1].String()
}

// Differential runs the x86 input object and the translated Arm64 object on
// their respective simulators over a series of seeded data images and
// compares observable output. SeedDataSymbols keys the fill by symbol name,
// so both objects see identical initial data despite different layouts; a
// mismatch therefore indicts the translation, not the harness.
func Differential(x86Obj, armObj *obj.File, o DiffOptions) *DiffResult {
	if o.Seeds <= 0 {
		o.Seeds = 32
	}
	res := &DiffResult{}
	if len(o.SeedList) > 0 {
		for _, seed := range o.SeedList {
			res.record(compareSeed(x86Obj, armObj, seed, o))
		}
		return res
	}
	seed := o.StartSeed
	for attempts := 0; res.Compared < o.Seeds && attempts < 4*o.Seeds; attempts++ {
		res.record(compareSeed(x86Obj, armObj, seed, o))
		seed++
	}
	return res
}

func (r *DiffResult) record(sr SeedResult) {
	r.Results = append(r.Results, sr)
	switch sr.Status {
	case SeedSkipped:
		r.Skipped++
	case SeedMismatch:
		r.Compared++
		r.Mismatches = append(r.Mismatches, sr)
	default:
		r.Compared++
	}
}

// compareSeed runs both objects on one seeded data image. The mismatch
// verdict requires both runs to complete: x86 and A64 legitimately diverge
// on faults (x86 #DE traps where A64 SDIV yields 0) and on step budgets
// (instruction counts differ per ISA), so an error on either side makes the
// seed incomparable rather than suspicious.
func compareSeed(x86Obj, armObj *obj.File, seed int64, o DiffOptions) SeedResult {
	xOut, xErr := runSeeded(x86Obj, seed, o)
	aOut, aErr := runSeeded(armObj, seed, o)
	sr := SeedResult{Seed: seed, X86Out: xOut, ArmOut: aOut}
	switch {
	case xErr != nil:
		sr.Status = SeedSkipped
		sr.Detail = fmt.Sprintf("x86 run failed (seed %d): %v", seed, xErr)
	case aErr != nil:
		sr.Status = SeedSkipped
		sr.Detail = fmt.Sprintf("arm64 run failed (seed %d): %v", seed, aErr)
	case xOut != aOut:
		sr.Status = SeedMismatch
		sr.Detail = fmt.Sprintf("seed %d: x86 output %q, arm64 output %q", seed, xOut, aOut)
	default:
		sr.Status = SeedMatch
	}
	return sr
}

func runSeeded(f *obj.File, seed int64, o DiffOptions) (string, error) {
	m, err := sim.NewMachine(f)
	if err != nil {
		return "", err
	}
	if o.MaxSteps > 0 {
		m.MaxSteps = o.MaxSteps
	}
	if o.NThreads > 0 {
		m.NThreads = o.NThreads
	}
	m.Engine = o.Engine
	m.SeedDataSymbols(seed)
	if _, err := m.Run(); err != nil {
		return "", err
	}
	return m.Out.String(), nil
}

package validate

import (
	"fmt"

	"lasagne/internal/fences"
	"lasagne/internal/ir"
)

// Opts selects which semantic invariants a checkpoint enforces on top of
// the structural verifier. Invariants are phase-dependent: fence coverage
// only holds once placement has run, and the pointer-cast bound only once
// refinement has established a baseline. Opts must stay JSON-serializable —
// repro bundles embed it so a checkpoint failure replays standalone.
type Opts struct {
	// FencesPlaced asserts the §7/§8 fence-coverage invariant: every plain
	// (non-atomic) shared load is followed, within its block and before any
	// other shared access / call / block end, by an Frm or Fsc fence (or an
	// RMW/cmpxchg, which Fig. 8a maps to a full fence); symmetrically every
	// plain shared store is preceded by an Fww or Fsc. Atomic accesses are
	// self-ordered: seq_cst by its full-fence lowering, acquire/release by
	// LDAR/STLR. Placement establishes the invariant, §7.2 merging preserves
	// it (a fence is only removed when a covering fence remains with no
	// shared access between), strengthening preserves it (the deleted
	// fence's only uncovered access becomes acquire/release), and every
	// registered opt pass must preserve it — the per-pass property test pins
	// that.
	FencesPlaced bool
	// MaxPtrCasts, when >= 0, bounds the number of ptrtoint/inttoptr
	// instructions in the function: refinement removes them (§5), so a later
	// stage reintroducing one regresses the translation's type recovery.
	// Use -1 to skip the check.
	MaxPtrCasts int
	// UseEscape switches the shared/local classifier from the alloca-only
	// IsStackPointer test to the escape analysis, mirroring
	// fences.Options.UseEscape. The checkpoint must classify accesses with
	// exactly the placement algorithm's notion of "local", or it would
	// demand fences placement legitimately skipped.
	UseEscape bool
	// LocalGlobals is the sorted ThreadLocalGlobals result the pipeline's
	// prepass computed (module context a single function cannot recover),
	// serialized by name so bundles replay with the same classification.
	LocalGlobals []string `json:",omitempty"`
}

// fenceOptions translates Opts into the fences.Options whose classifier
// placement used.
func (o Opts) fenceOptions() fences.Options {
	return fences.Options{
		SkipStackAccesses: true,
		UseEscape:         o.UseEscape,
		LocalGlobals:      fences.LocalGlobalSet(o.LocalGlobals),
	}
}

// CheckFunc runs the structural verifier and the selected semantic
// invariants on one function, returning the first violation.
func CheckFunc(f *ir.Func, o Opts) error {
	return CheckFuncWith(f, o, nil)
}

// CheckFuncWith is CheckFunc with an optional prebuilt thread-private
// classifier. The pipeline passes the classifier its fence passes used so
// the post-placement checkpoint does not re-run the escape analysis; nil
// derives a fresh one from o. Callers must only reuse a classifier while
// the function's access graph is unchanged (fence insertion/removal is
// fine; the opt passes are not — re-derive after them).
func CheckFuncWith(f *ir.Func, o Opts, local func(ir.Value) bool) error {
	if err := ir.VerifyFunc(f); err != nil {
		return err
	}
	if f.External {
		return nil
	}
	if o.MaxPtrCasts >= 0 {
		if n := CountPtrCastsFunc(f); n > o.MaxPtrCasts {
			return fmt.Errorf("validate: %d ptrtoint/inttoptr instructions, baseline after refinement was %d",
				n, o.MaxPtrCasts)
		}
	}
	if o.FencesPlaced {
		if local == nil {
			local = o.fenceOptions().Classifier(f)
		}
		if err := checkFenceCoverage(f, local); err != nil {
			return err
		}
	}
	return nil
}

// CountPtrCastsFunc counts ptrtoint/inttoptr instructions in one function
// (the per-function form of refine.CountPtrCasts).
func CountPtrCastsFunc(f *ir.Func) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpPtrToInt || in.Op == ir.OpIntToPtr {
				n++
			}
		}
	}
	return n
}

// fullFence reports whether the instruction orders both directions like an
// Fsc: RMW and cmpxchg are seq_cst full fences under the Fig. 8a mapping.
func fullFence(in *ir.Instr) bool {
	return in.Op == ir.OpRMW || in.Op == ir.OpCmpXchg
}

// sharedAccess reports whether the instruction is a load or store of
// possibly-shared (non-thread-private) memory; these are the accesses
// fences order and therefore the accesses that interrupt a coverage scan.
// Calls also interrupt: the callee may access shared memory before any
// local fence.
func sharedAccess(in *ir.Instr, local func(ir.Value) bool) bool {
	switch in.Op {
	case ir.OpLoad:
		return !local(in.Args[0])
	case ir.OpStore:
		return !local(in.Args[1])
	case ir.OpCall:
		return true
	}
	return false
}

// checkFenceCoverage scans every block for the load→Frm and Fww→store
// patterns described on Opts.FencesPlaced.
func checkFenceCoverage(f *ir.Func, local func(ir.Value) bool) error {
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				if in.Order != ir.NotAtomic || local(in.Args[0]) {
					continue // atomic loads are self-ordered
				}
				if !coveredAfter(b, i, local) {
					return fmt.Errorf("validate: block %%%s: shared load %q has no trailing Frm/Fsc fence",
						b.Name, in)
				}
			case ir.OpStore:
				if in.Order != ir.NotAtomic || local(in.Args[1]) {
					continue // atomic stores are self-ordered
				}
				if !coveredBefore(b, i, local) {
					return fmt.Errorf("validate: block %%%s: shared store %q has no leading Fww/Fsc fence",
						b.Name, in)
				}
			}
		}
	}
	return nil
}

// coveredAfter reports whether the shared load at index i is followed by an
// Frm/Fsc fence (or full-fence atomic) before any other shared access or
// the end of the block.
func coveredAfter(b *ir.Block, i int, local func(ir.Value) bool) bool {
	for k := i + 1; k < len(b.Instrs); k++ {
		in := b.Instrs[k]
		if in.Op == ir.OpFence && (in.Fence == ir.FenceRM || in.Fence == ir.FenceSC) {
			return true
		}
		if fullFence(in) {
			return true
		}
		if sharedAccess(in, local) {
			return false
		}
	}
	return false
}

// coveredBefore reports whether the shared store at index i is preceded by
// an Fww/Fsc fence (or full-fence atomic) with no other shared access in
// between.
func coveredBefore(b *ir.Block, i int, local func(ir.Value) bool) bool {
	for k := i - 1; k >= 0; k-- {
		in := b.Instrs[k]
		if in.Op == ir.OpFence && (in.Fence == ir.FenceWW || in.Fence == ir.FenceSC) {
			return true
		}
		if fullFence(in) {
			return true
		}
		if sharedAccess(in, local) {
			return false
		}
	}
	return false
}

package validate_test

import (
	"strings"
	"testing"

	"lasagne/internal/backend"
	"lasagne/internal/core/cache"
	"lasagne/internal/diag/inject"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/minic"
	"lasagne/internal/validate"
)

func TestGenProgramDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		a, b := validate.GenProgram(seed), validate.GenProgram(seed)
		if a != b {
			t.Fatalf("seed %d: GenProgram is not deterministic", seed)
		}
		if _, err := minic.Compile("gen", a); err != nil {
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, a)
		}
	}
	if validate.GenProgram(1) == validate.GenProgram(2) {
		t.Fatal("distinct seeds produced identical programs")
	}
}

// buildFencedFunc returns a function with one shared load and one shared
// store, fenced per the Fig. 8a mapping (Frm after the load, Fww before the
// store), plus stack traffic that needs no fences.
func buildFencedFunc(t *testing.T) (*ir.Module, *ir.Func) {
	t.Helper()
	m := ir.NewModule("t")
	g := m.NewGlobal("shared", ir.I64)
	f := m.NewFunc("subject", ir.Signature(ir.I64))
	bd := ir.NewBuilder(f.NewBlock("entry"))
	slot := bd.Alloca(ir.I64)
	bd.Store(ir.I64Const(3), slot) // stack store: exempt
	v := bd.Load(g)
	bd.Fence(ir.FenceRM)
	sv := bd.Load(slot) // stack load: exempt
	sum := bd.Add(v, sv)
	bd.Fence(ir.FenceWW)
	bd.Store(sum, g)
	bd.Ret(sum)
	if err := validate.CheckFunc(f, validate.Opts{FencesPlaced: true, MaxPtrCasts: 0}); err != nil {
		t.Fatalf("fenced function not checkpoint-clean: %v", err)
	}
	return m, f
}

func TestCheckFuncFenceCoverage(t *testing.T) {
	// Dropping the Frm must trip the load rule.
	_, f := buildFencedFunc(t)
	removeFirstFence(f, ir.FenceRM)
	err := validate.CheckFunc(f, validate.Opts{FencesPlaced: true, MaxPtrCasts: -1})
	if err == nil || !strings.Contains(err.Error(), "no trailing Frm") {
		t.Fatalf("dropped Frm: err = %v, want load-coverage violation", err)
	}

	// Dropping the Fww must trip the store rule.
	_, f = buildFencedFunc(t)
	removeFirstFence(f, ir.FenceWW)
	err = validate.CheckFunc(f, validate.Opts{FencesPlaced: true, MaxPtrCasts: -1})
	if err == nil || !strings.Contains(err.Error(), "no leading Fww") {
		t.Fatalf("dropped Fww: err = %v, want store-coverage violation", err)
	}

	// An Fsc covers both directions, and §7.2 merging keeps coverage.
	_, f = buildFencedFunc(t)
	before := fences.CountFunc(f)
	if removed := fences.MergeFunc(f, fences.Options{SkipStackAccesses: true}); removed == 0 || fences.CountFunc(f) != before-removed {
		t.Fatalf("merge removed %d of %d fences", removed, before)
	}
	if err := validate.CheckFunc(f, validate.Opts{FencesPlaced: true, MaxPtrCasts: -1}); err != nil {
		t.Fatalf("merged function lost coverage: %v", err)
	}
}

func TestCheckFuncPtrCastBound(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("shared", ir.I64)
	f := m.NewFunc("subject", ir.Signature(ir.I64))
	bd := ir.NewBuilder(f.NewBlock("entry"))
	pi := bd.PtrToInt(g, ir.I64)
	bd.Ret(pi)
	if got := validate.CountPtrCastsFunc(f); got != 1 {
		t.Fatalf("CountPtrCastsFunc = %d, want 1", got)
	}
	if err := validate.CheckFunc(f, validate.Opts{MaxPtrCasts: 1}); err != nil {
		t.Fatalf("cast at baseline rejected: %v", err)
	}
	err := validate.CheckFunc(f, validate.Opts{MaxPtrCasts: 0})
	if err == nil || !strings.Contains(err.Error(), "ptrtoint") {
		t.Fatalf("cast above baseline: err = %v, want ptr-cast violation", err)
	}
	if err := validate.CheckFunc(f, validate.Opts{MaxPtrCasts: -1}); err != nil {
		t.Fatalf("MaxPtrCasts=-1 must skip the check: %v", err)
	}
}

func removeFirstFence(f *ir.Func, kind ir.FenceKind) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpFence && in.Fence == kind {
				b.Remove(in)
				return
			}
		}
	}
	panic("no such fence")
}

// TestDifferentialMatches compares the x86 and Arm64 compilations of the
// same generated programs across 32 seeded data images each — the
// acceptance bar for the oracle's seed plumbing, on programs fast enough
// to afford it.
func TestDifferentialMatches(t *testing.T) {
	progs := 3
	if testing.Short() {
		progs = 1
	}
	for p := int64(1); p <= int64(progs); p++ {
		src := validate.GenProgram(p)
		m, err := minic.Compile("diff", src)
		if err != nil {
			t.Fatal(err)
		}
		x86, err := backend.Compile(m, "x86-64")
		if err != nil {
			t.Fatal(err)
		}
		arm, err := backend.Compile(m, "arm64")
		if err != nil {
			t.Fatal(err)
		}
		res := validate.Differential(x86, arm, validate.DiffOptions{Seeds: 32})
		if err := res.Err(); err != nil {
			t.Fatalf("program %d: %v", p, err)
		}
		if res.Compared < 32 {
			t.Fatalf("program %d: compared %d seeds, want >= 32", p, res.Compared)
		}
	}
}

// TestDifferentialDetectsMismatch feeds the oracle two programs that
// genuinely differ and checks the mismatch names its seed.
func TestDifferentialDetectsMismatch(t *testing.T) {
	m1, err := minic.Compile("a", "int main() { print_int(1); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := minic.Compile("b", "int main() { print_int(2); return 0; }")
	if err != nil {
		t.Fatal(err)
	}
	x86, err := backend.Compile(m1, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	arm, err := backend.Compile(m2, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	res := validate.Differential(x86, arm, validate.DiffOptions{Seeds: 2})
	if res.Ok() {
		t.Fatal("oracle missed a real output difference")
	}
	err = res.Err()
	if err == nil || !strings.Contains(err.Error(), "seed 0") {
		t.Fatalf("mismatch message %v does not name its seed", err)
	}
}

func TestBisectFirstBad(t *testing.T) {
	passes := []string{"p1", "p2", "p3", "p4", "p5"}
	for bad := 0; bad <= len(passes); bad++ {
		bad := bad
		n, err := validate.BisectFirstBad(passes, func(prefix []string) (bool, error) {
			return len(prefix) >= bad, nil
		})
		if err != nil {
			t.Fatalf("bad=%d: %v", bad, err)
		}
		if n != bad {
			t.Fatalf("bad=%d: bisected to %d", bad, n)
		}
	}
	// Non-reproducing failure is an error, not a bogus attribution.
	if _, err := validate.BisectFirstBad(passes, func([]string) (bool, error) { return false, nil }); err == nil {
		t.Fatal("bisection of a non-reproducing failure succeeded")
	}
}

// TestBundleReplay writes a pass-kind bundle for an injected fence-dropping
// corruption and replays it standalone from the JSON artifact.
func TestBundleReplay(t *testing.T) {
	defer inject.Reset()
	m, f := buildFencedFunc(t)
	opts := validate.Opts{FencesPlaced: true, MaxPtrCasts: 0}
	b := &validate.Bundle{
		Kind:        validate.KindPass,
		Fingerprint: "test-fingerprint",
		Failure:     "validate: injected fence drop",
		Func:        f.Name,
		Pass:        "instcombine",
		Opts:        opts,
		Shape:       cache.EncodeModuleShape(m),
		PreBody:     cache.EncodeBody(f),
	}
	dir := t.TempDir()
	path, err := b.Write(dir)
	if err != nil {
		t.Fatal(err)
	}

	loaded, err := validate.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	// With the corruption armed (the stand-in for a deterministic pass bug)
	// the bundle must reproduce the checkpoint violation.
	inject.Arm("corrupt-fence:instcombine", inject.Corrupt)
	failure, err := validate.ReplayPass(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if failure == nil || !strings.Contains(failure.Error(), "fence") {
		t.Fatalf("replay failure = %v, want the fence-coverage violation", failure)
	}
	// With the bug "fixed" the same bundle must report no failure.
	inject.Reset()
	failure, err = validate.ReplayPass(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if failure != nil {
		t.Fatalf("replay of a fixed pass still fails: %v", failure)
	}
}

// TestReduceFunc checks the delta debugger shrinks a failing function to a
// minimal verifier-clean reproducer while the failure persists.
func TestReduceFunc(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("shared", ir.I64)
	f := m.NewFunc("subject", ir.Signature(ir.I64, ir.I64))
	entry := f.NewBlock("entry")
	then := f.NewBlock("then")
	els := f.NewBlock("else")
	exit := f.NewBlock("exit")

	bd := ir.NewBuilder(entry)
	slot := bd.Alloca(ir.I64)
	bd.Store(f.Params[0], slot)
	a := bd.Load(slot)
	bb := bd.Mul(a, ir.I64Const(3))
	cond := bd.ICmp(ir.PredSLT, bb, ir.I64Const(10))
	bd.CondBr(cond, then, els)

	bd.SetBlock(then)
	t1 := bd.Add(bb, ir.I64Const(1))
	bd.Br(exit)
	bd.SetBlock(els)
	e1 := bd.Sub(bb, ir.I64Const(1))
	bd.Br(exit)

	bd.SetBlock(exit)
	phi := bd.Phi(ir.I64)
	ir.AddIncoming(phi, t1, then)
	ir.AddIncoming(phi, e1, els)
	// The "bug": an uncovered shared load.
	v := bd.Load(g)
	sum := bd.Add(phi, v)
	bd.Ret(sum)

	fails := func(fn *ir.Func) bool {
		return validate.CheckFunc(fn, validate.Opts{FencesPlaced: true, MaxPtrCasts: -1}) != nil
	}
	before := f.NumInstrs()
	removed := validate.ReduceFunc(f, fails)
	if removed == 0 {
		t.Fatal("reducer removed nothing")
	}
	if got := f.NumInstrs(); got >= before {
		t.Fatalf("NumInstrs %d -> %d, want a reduction", before, got)
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatalf("reduced function invalid: %v", err)
	}
	if !fails(f) {
		t.Fatal("reduction lost the failure")
	}
	// The minimal reproducer is the load plus the terminator; everything
	// else (the diamond, the stack traffic, the arithmetic) must be gone.
	if got := f.NumInstrs(); got > 3 {
		t.Errorf("reduced to %d instructions, want <= 3:\n%s", got, f.String())
	}
	if len(f.Blocks) != 1 {
		t.Errorf("reduced to %d blocks, want 1:\n%s", len(f.Blocks), f.String())
	}
}

// Package validate is the self-checking subsystem of the translator: stage
// checkpoints (ir.Verify plus the semantic invariants of the §7/§8 fence
// mapping), a differential oracle comparing the x86 input against the
// translated Arm64 output under seeded data, automatic bisection of the opt
// pass list on a failure, repro bundles that replay a failing pass
// standalone, and a delta-debugging reducer that shrinks a failing function.
//
// The package sits below internal/core (which wires the checkpoints into
// the translation pipeline behind core.Config.Validate) and above the IR,
// fence and simulator layers it checks. Following "Sound Transpilation from
// Binary to Machine-Independent Code" (Metere et al.) and "On Architecture
// to Architecture Mapping for Concurrency", the premise is that a lifter
// and memory-model mapper must be continuously checked, not trusted.
package validate

import (
	"fmt"
	"math/rand"
	"strings"
)

// progGen generates random (but always-terminating, division-safe) minic
// programs for differential testing of the whole translation stack. It was
// promoted out of the fuzz harness so that the oracle's program source is a
// library facility shared by tests, the fuzz target and cmd/lasagne-bench.
type progGen struct {
	rng  *rand.Rand
	sb   strings.Builder
	vars []string // assignable integer variables
	ro   []string // read-only (loop induction) variables
	dbls []string
}

func (g *progGen) pick(list []string) string { return list[g.rng.Intn(len(list))] }

// scoped runs fn with the variable lists restored afterwards (minic blocks
// are lexically scoped).
func (g *progGen) scoped(fn func()) {
	vs := append([]string(nil), g.vars...)
	ros := append([]string(nil), g.ro...)
	ds := append([]string(nil), g.dbls...)
	fn()
	g.vars, g.ro, g.dbls = vs, ros, ds
}

// intExpr produces a random integer expression over the declared variables.
func (g *progGen) intExpr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		readable := append(append([]string(nil), g.vars...), g.ro...)
		if len(readable) > 0 && g.rng.Intn(2) == 0 {
			return g.pick(readable)
		}
		return fmt.Sprintf("%d", g.rng.Intn(200)-100)
	}
	a := g.intExpr(depth - 1)
	b := g.intExpr(depth - 1)
	switch g.rng.Intn(8) {
	case 0:
		return fmt.Sprintf("(%s + %s)", a, b)
	case 1:
		return fmt.Sprintf("(%s - %s)", a, b)
	case 2:
		return fmt.Sprintf("(%s * %s)", a, b)
	case 3:
		// Division guarded against zero and INT_MIN/-1 style surprises.
		return fmt.Sprintf("(%s / (%s %% 13 + 17))", a, b)
	case 4:
		return fmt.Sprintf("(%s %% (%s %% 11 + 23))", a, b)
	case 5:
		return fmt.Sprintf("(%s & %s)", a, b)
	case 6:
		return fmt.Sprintf("(%s ^ %s)", a, b)
	default:
		return fmt.Sprintf("(%s << %d)", a, g.rng.Intn(4))
	}
}

func (g *progGen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.intExpr(1), ops[g.rng.Intn(len(ops))], g.intExpr(1))
}

func (g *progGen) stmt(depth int, indent string) {
	switch g.rng.Intn(8) {
	case 0, 1: // assignment
		if len(g.vars) > 0 {
			fmt.Fprintf(&g.sb, "%s%s = %s;\n", indent, g.pick(g.vars), g.intExpr(2))
			return
		}
		fallthrough
	case 2: // new variable
		name := fmt.Sprintf("v%d", len(g.vars))
		fmt.Fprintf(&g.sb, "%sint %s = %s;\n", indent, name, g.intExpr(2))
		g.vars = append(g.vars, name)
	case 3: // if/else (inner declarations are block-scoped: save/restore)
		if depth <= 0 {
			g.stmt(0, indent)
			return
		}
		fmt.Fprintf(&g.sb, "%sif (%s) {\n", indent, g.cond())
		g.scoped(func() { g.stmt(depth-1, indent+"  ") })
		if g.rng.Intn(2) == 0 {
			fmt.Fprintf(&g.sb, "%s} else {\n", indent)
			g.scoped(func() { g.stmt(depth-1, indent+"  ") })
		}
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case 4: // bounded loop
		if depth <= 0 {
			g.stmt(0, indent)
			return
		}
		iv := fmt.Sprintf("i%d", g.rng.Intn(1000))
		fmt.Fprintf(&g.sb, "%sint %s;\n", indent, iv)
		fmt.Fprintf(&g.sb, "%sfor (%s = 0; %s < %d; %s = %s + 1) {\n",
			indent, iv, iv, 2+g.rng.Intn(6), iv, iv)
		g.scoped(func() {
			g.ro = append(g.ro, iv)
			g.stmt(depth-1, indent+"  ")
		})
		fmt.Fprintf(&g.sb, "%s}\n", indent)
	case 5: // array traffic through the global
		fmt.Fprintf(&g.sb, "%sgarr[(%s & 0x7)] = %s;\n", indent, g.intExpr(1), g.intExpr(2))
	case 6: // shared-global traffic: the one location the escape analysis
		// must keep fenced (the worker thread also touches it), so these
		// statements are what exercise acquire/release lowering downstream.
		switch g.rng.Intn(3) {
		case 0:
			fmt.Fprintf(&g.sb, "%sgshr = %s;\n", indent, g.intExpr(2))
		case 1:
			fmt.Fprintf(&g.sb, "%satomic_add(&gshr, (%s & 0x7));\n", indent, g.intExpr(1))
		default:
			if len(g.vars) > 0 {
				fmt.Fprintf(&g.sb, "%s%s = gshr + %s;\n", indent, g.pick(g.vars), g.intExpr(1))
			} else {
				name := fmt.Sprintf("v%d", len(g.vars))
				fmt.Fprintf(&g.sb, "%sint %s = gshr;\n", indent, name)
				g.vars = append(g.vars, name)
			}
		}
	case 7: // double arithmetic
		if len(g.dbls) > 0 {
			fmt.Fprintf(&g.sb, "%s%s = %s * 0.5 + (double)(%s);\n",
				indent, g.pick(g.dbls), g.pick(g.dbls), g.intExpr(1))
			return
		}
		name := fmt.Sprintf("d%d", len(g.dbls))
		fmt.Fprintf(&g.sb, "%sdouble %s = (double)(%s);\n", indent, name, g.intExpr(1))
		g.dbls = append(g.dbls, name)
	}
}

// GenProgram deterministically builds a random full minic program whose
// observable output is a checksum of every variable and the global array.
// The same seed always yields the same source, so any failure that names
// its seed is reproducible from the log line alone.
func GenProgram(seed int64) string {
	g := &progGen{rng: rand.New(rand.NewSource(seed))}
	g.sb.WriteString("int garr[8];\n")
	g.sb.WriteString("int gshr;\n")
	// A spawned worker shares gshr with main, so the escape analysis must
	// classify it shared and main's gshr accesses keep their fences (which
	// the strengthening pass then turns into acquire/release accesses).
	// garr stays main-only and provably thread-local. The join() before
	// main's first statement keeps the schedule deterministic for the
	// differential oracle.
	g.sb.WriteString("void wrk(int id) {\n  atomic_add(&gshr, id + 1);\n}\n")
	g.sb.WriteString("int main() {\n")
	g.sb.WriteString("  spawn(wrk, 2);\n  join();\n")
	n := 4 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		g.stmt(2, "  ")
	}
	// Checksum.
	g.sb.WriteString("  int chk = 0;\n")
	for _, v := range g.vars {
		fmt.Fprintf(&g.sb, "  chk = chk * 31 + %s;\n", v)
	}
	for _, d := range g.dbls {
		fmt.Fprintf(&g.sb, "  chk = chk * 31 + (int)%s;\n", d)
	}
	g.sb.WriteString("  int k;\n  for (k = 0; k < 8; k = k + 1) chk = chk * 7 + garr[k];\n")
	g.sb.WriteString("  chk = chk * 31 + gshr;\n")
	g.sb.WriteString("  print_int(chk);\n  return 0;\n}\n")
	return g.sb.String()
}

// Package obj defines a minimal object/executable container standing in for
// ELF: named sections with load addresses, a symbol table, and a serialized
// byte format. The compiler backends produce obj files; the binary lifter
// and the machine-code simulators consume them.
package obj

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// Conventional load addresses.
const (
	TextBase = 0x400000 // machine code
	DataBase = 0x600000 // globals
	PLTBase  = 0x700000 // one slot per external (runtime-provided) function
	PLTSlot  = 16       // bytes per PLT slot
)

// SymKind classifies a symbol.
type SymKind int

const (
	SymFunc SymKind = iota
	SymData
	SymExtern // runtime-provided function, resolved by the simulator
)

func (k SymKind) String() string {
	switch k {
	case SymFunc:
		return "func"
	case SymData:
		return "data"
	case SymExtern:
		return "extern"
	}
	return "?"
}

// Symbol is a named address range.
type Symbol struct {
	Name string
	Kind SymKind
	Addr uint64
	Size uint64
}

// Section is a named, loaded byte range.
type Section struct {
	Name string
	Addr uint64
	Data []byte
}

// File is a fully linked executable image.
type File struct {
	Arch     string // "x86-64" or "arm64"
	Entry    string // entry function symbol
	Sections []Section
	Symbols  []Symbol
}

// Section returns the named section, or nil.
func (f *File) Section(name string) *Section {
	for i := range f.Sections {
		if f.Sections[i].Name == name {
			return &f.Sections[i]
		}
	}
	return nil
}

// Symbol returns the named symbol, or nil.
func (f *File) Symbol(name string) *Symbol {
	for i := range f.Symbols {
		if f.Symbols[i].Name == name {
			return &f.Symbols[i]
		}
	}
	return nil
}

// SymbolAt returns the symbol covering addr, or nil. Function symbols match
// [Addr, Addr+Size); zero-size symbols match only their exact address.
func (f *File) SymbolAt(addr uint64) *Symbol {
	for i := range f.Symbols {
		s := &f.Symbols[i]
		if addr == s.Addr || (addr > s.Addr && addr < s.Addr+s.Size) {
			return s
		}
	}
	return nil
}

// FuncSymbols returns the function symbols sorted by address.
func (f *File) FuncSymbols() []Symbol {
	var out []Symbol
	for _, s := range f.Symbols {
		if s.Kind == SymFunc {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

const magic = "LSGN\x01"

// Marshal serializes the file.
func (f *File) Marshal() []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	writeStr(&b, f.Arch)
	writeStr(&b, f.Entry)
	writeU32(&b, uint32(len(f.Sections)))
	for _, s := range f.Sections {
		writeStr(&b, s.Name)
		writeU64(&b, s.Addr)
		writeU32(&b, uint32(len(s.Data)))
		b.Write(s.Data)
	}
	writeU32(&b, uint32(len(f.Symbols)))
	for _, s := range f.Symbols {
		writeStr(&b, s.Name)
		writeU32(&b, uint32(s.Kind))
		writeU64(&b, s.Addr)
		writeU64(&b, s.Size)
	}
	return b.Bytes()
}

// Unmarshal parses a serialized file.
func Unmarshal(data []byte) (*File, error) {
	r := &reader{data: data}
	if string(r.bytes(len(magic))) != magic {
		return nil, fmt.Errorf("obj: bad magic")
	}
	f := &File{}
	f.Arch = r.str()
	f.Entry = r.str()
	nsec := int(r.u32())
	for i := 0; i < nsec && r.err == nil; i++ {
		var s Section
		s.Name = r.str()
		s.Addr = r.u64()
		n := int(r.u32())
		s.Data = append([]byte(nil), r.bytes(n)...)
		f.Sections = append(f.Sections, s)
	}
	nsym := int(r.u32())
	for i := 0; i < nsym && r.err == nil; i++ {
		var s Symbol
		s.Name = r.str()
		s.Kind = SymKind(r.u32())
		s.Addr = r.u64()
		s.Size = r.u64()
		f.Symbols = append(f.Symbols, s)
	}
	if r.err != nil {
		return nil, fmt.Errorf("obj: %w", r.err)
	}
	return f, nil
}

func writeStr(b *bytes.Buffer, s string) {
	writeU32(b, uint32(len(s)))
	b.WriteString(s)
}

func writeU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func writeU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || r.pos+n > len(r.data) {
		if r.err == nil {
			r.err = fmt.Errorf("truncated at %d", r.pos)
		}
		return make([]byte, n)
	}
	out := r.data[r.pos : r.pos+n]
	r.pos += n
	return out
}

func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.bytes(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.bytes(8)) }
func (r *reader) str() string { return string(r.bytes(int(r.u32()))) }

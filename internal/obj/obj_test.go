package obj

import (
	"reflect"
	"testing"
	"testing/quick"
)

func sampleFile() *File {
	return &File{
		Arch:  "x86-64",
		Entry: "main",
		Sections: []Section{
			{Name: ".text", Addr: TextBase, Data: []byte{0x90, 0xC3}},
			{Name: ".data", Addr: DataBase, Data: make([]byte, 64)},
		},
		Symbols: []Symbol{
			{Name: "main", Kind: SymFunc, Addr: TextBase, Size: 2},
			{Name: "g", Kind: SymData, Addr: DataBase, Size: 8},
			{Name: "__print_int", Kind: SymExtern, Addr: PLTBase, Size: PLTSlot},
		},
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	f := sampleFile()
	data := f.Marshal()
	g, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f, g) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", f, g)
	}
}

func TestUnmarshalBadMagic(t *testing.T) {
	if _, err := Unmarshal([]byte("NOPE")); err == nil {
		t.Fatal("expected error")
	}
}

func TestUnmarshalTruncated(t *testing.T) {
	data := sampleFile().Marshal()
	for _, cut := range []int{6, 10, 20, len(data) - 1} {
		if _, err := Unmarshal(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestLookups(t *testing.T) {
	f := sampleFile()
	if f.Section(".text") == nil || f.Section(".bss") != nil {
		t.Fatal("section lookup")
	}
	if f.Symbol("main") == nil || f.Symbol("nope") != nil {
		t.Fatal("symbol lookup")
	}
	if s := f.SymbolAt(TextBase + 1); s == nil || s.Name != "main" {
		t.Fatalf("SymbolAt mid-function: %v", s)
	}
	if s := f.SymbolAt(TextBase + 2); s != nil {
		t.Fatalf("SymbolAt past end: %v", s)
	}
	funcs := f.FuncSymbols()
	if len(funcs) != 1 || funcs[0].Name != "main" {
		t.Fatalf("FuncSymbols: %v", funcs)
	}
}

// Property: marshal/unmarshal round-trips arbitrary section payloads.
func TestMarshalProperty(t *testing.T) {
	prop := func(name string, data []byte, addr uint64) bool {
		f := &File{
			Arch:     "arm64",
			Entry:    name,
			Sections: []Section{{Name: name, Addr: addr, Data: append([]byte(nil), data...)}},
		}
		if f.Sections[0].Data == nil {
			f.Sections[0].Data = []byte{}
		}
		g, err := Unmarshal(f.Marshal())
		if err != nil {
			return false
		}
		return g.Entry == name && g.Sections[0].Addr == addr &&
			string(g.Sections[0].Data) == string(data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package armlifter lifts Arm64 binaries to the IR — the Appendix B
// direction of the paper (Arm → IR → x86). It mirrors the x86 lifter's
// structure: CFG reconstruction with symbolic SP tracking, eager NZCV flag
// materialization, per-register slots with block-local value caching, and
// global/function rediscovery from composed MOVZ/MOVK constants.
//
// Arm's LL/SC read-modify-write loops (the canonical
// `dmb; L: ldxr; op; stxr; cbnz L; dmb` sequence emitted by compilers) are
// recognized as idioms and lifted to seq_cst atomicrmw/cmpxchg, matching
// the Appendix B mapping table:
//
//	ld      -> ld.na        DMBLD -> Frm
//	st      -> st.na        DMBST -> Fww
//	RMW     -> RMWsc        DMBFF -> Fsc
//
// The resulting IR compiles with the x86-64 backend, whose Fsc -> MFENCE /
// Frm,Fww -> (nothing) lowering completes the weak-to-strong translation.
package armlifter

import (
	"fmt"
	"sort"

	"lasagne/internal/arm64"
	"lasagne/internal/ir"
	"lasagne/internal/obj"
	"lasagne/internal/rt"
)

// unit is one lifting unit: a plain instruction or a recognized atomic
// idiom spanning several instructions.
type unit struct {
	inst arm64.Inst // valid when kind == unitInst
	kind unitKind

	// Atomic idiom fields.
	rmwOp   ir.RMWOp
	size    int
	addrReg arm64.Reg
	operand arm64.Reg // value register (RMW) or new-value register (CAS)
	expect  arm64.Reg // expected-value register (CAS)
	result  arm64.Reg // register receiving the old value
	addr    uint64
	length  int // bytes covered
}

type unitKind int

const (
	unitInst unitKind = iota
	unitRMW
	unitCAS
)

// Lift translates an entire Arm64 object file into an IR module.
func Lift(file *obj.File) (*ir.Module, error) {
	if file.Arch != "arm64" {
		return nil, fmt.Errorf("armlifter: cannot lift %q binaries", file.Arch)
	}
	text := file.Section(".text")
	if text == nil {
		return nil, fmt.Errorf("armlifter: no .text section")
	}
	mod := ir.NewModule(file.Entry + ".lifted")
	rt.Declare(mod)

	data := file.Section(".data")
	for _, s := range file.Symbols {
		if s.Kind != obj.SymData {
			continue
		}
		g := mod.NewGlobal(s.Name, ir.ArrayOf(ir.I8, int(s.Size)))
		if data != nil && s.Addr >= data.Addr && s.Addr+s.Size <= data.Addr+uint64(len(data.Data)) {
			g.Init = append([]byte(nil), data.Data[s.Addr-data.Addr:s.Addr-data.Addr+s.Size]...)
		}
	}

	l := &lifter{file: file, mod: mod, funcs: map[string]*mfunc{}}
	for _, sym := range file.FuncSymbols() {
		if sym.Addr < text.Addr || sym.Addr+sym.Size > text.Addr+uint64(len(text.Data)) {
			return nil, fmt.Errorf("armlifter: function %s outside .text", sym.Name)
		}
		code := text.Data[sym.Addr-text.Addr : sym.Addr-text.Addr+sym.Size]
		insts, err := arm64.DecodeAll(code, sym.Addr)
		if err != nil {
			return nil, fmt.Errorf("armlifter: %s: %w", sym.Name, err)
		}
		units, err := recognizeAtomics(insts)
		if err != nil {
			return nil, fmt.Errorf("armlifter: %s: %w", sym.Name, err)
		}
		mf, err := buildCFG(sym, units)
		if err != nil {
			return nil, fmt.Errorf("armlifter: %s: %w", sym.Name, err)
		}
		discoverType(mf)
		l.funcs[sym.Name] = mf
		var params []ir.Type
		for _, p := range mf.params {
			if p.fp {
				params = append(params, ir.F64)
			} else {
				params = append(params, ir.I64)
			}
		}
		var ret ir.Type = ir.Void
		switch mf.ret {
		case retInt:
			ret = ir.I64
		case retF64:
			ret = ir.F64
		}
		mod.NewFunc(sym.Name, &ir.FuncType{Ret: ret, Params: params})
	}
	for _, sym := range file.FuncSymbols() {
		if err := l.liftFunc(l.funcs[sym.Name]); err != nil {
			return nil, fmt.Errorf("armlifter: @%s: %w", sym.Name, err)
		}
	}
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("armlifter: produced invalid IR: %w", err)
	}
	return mod, nil
}

// recognizeAtomics scans the instruction stream for the canonical LL/SC
// idioms and collapses them into single units.
//
//	RMW:  DMBFF; L: ldxr Rb,[Ra]; <op> Rc,...; stxr We,Rc,[Ra]; cbnz We,L; DMBFF
//	CAS:  DMBFF; L: ldxr Rb,[Ra]; subs zr,Rb,Rc; b.ne +12; stxr We,Rd,[Ra]; cbnz We,L; DMBFF
func recognizeAtomics(insts []arm64.Inst) ([]unit, error) {
	var out []unit
	for i := 0; i < len(insts); i++ {
		in := insts[i]
		if in.Op != arm64.LDXR && in.Op != arm64.LDAXR {
			out = append(out, unit{inst: in})
			continue
		}
		// Try the CAS shape first (it is longer).
		if i+4 < len(insts) {
			cmp, bne, stxr, cbnz := insts[i+1], insts[i+2], insts[i+3], insts[i+4]
			if cmp.Op == arm64.SUBS && cmp.Rd == arm64.XZR && cmp.Rn == in.Rd &&
				bne.Op == arm64.BCOND && bne.Cond == arm64.NE &&
				(stxr.Op == arm64.STXR || stxr.Op == arm64.STLXR) && stxr.Rn == in.Rn &&
				cbnz.Op == arm64.CBNZ && cbnz.Rd == stxr.Ra && uint64(cbnz.Imm) == in.Addr &&
				uint64(bne.Imm) == cbnz.Addr+4 {
				out = append(out, unit{
					kind: unitCAS, size: in.Size,
					addrReg: in.Rn, expect: cmp.Rm, operand: stxr.Rd, result: in.Rd,
					addr: in.Addr, length: 5 * 4,
				})
				i += 4
				continue
			}
		}
		// RMW shape.
		if i+3 < len(insts) {
			op, stxr, cbnz := insts[i+1], insts[i+2], insts[i+3]
			var rmwOp ir.RMWOp
			matched := true
			switch op.Op {
			case arm64.ADD:
				rmwOp = ir.RMWAdd
			case arm64.SUB:
				rmwOp = ir.RMWSub
			case arm64.AND:
				rmwOp = ir.RMWAnd
			case arm64.ORR:
				if op.Rn == arm64.XZR {
					rmwOp = ir.RMWXchg
				} else {
					rmwOp = ir.RMWOr
				}
			case arm64.EOR:
				rmwOp = ir.RMWXor
			default:
				matched = false
			}
			if matched &&
				(stxr.Op == arm64.STXR || stxr.Op == arm64.STLXR) && stxr.Rn == in.Rn && stxr.Rd == op.Rd &&
				cbnz.Op == arm64.CBNZ && cbnz.Rd == stxr.Ra && uint64(cbnz.Imm) == in.Addr {
				operand := op.Rm
				if rmwOp != ir.RMWXchg && op.Rn != in.Rd {
					// Operand on the left instead.
					operand = op.Rn
				}
				out = append(out, unit{
					kind: unitRMW, rmwOp: rmwOp, size: in.Size,
					addrReg: in.Rn, operand: operand, result: in.Rd,
					addr: in.Addr, length: 4 * 4,
				})
				i += 3
				continue
			}
		}
		return nil, fmt.Errorf("unrecognized exclusive-access idiom at %#x", in.Addr)
	}
	return out, nil
}

// uaddr returns the address of a unit.
func (u *unit) uaddr() uint64 {
	if u.kind == unitInst {
		return u.inst.Addr
	}
	return u.addr
}

func (u *unit) ulen() int {
	if u.kind == unitInst {
		return 4
	}
	return u.length
}

func (u *unit) isTerminator() bool {
	return u.kind == unitInst && u.inst.IsTerminator()
}

// mblock is a machine basic block of units.
type mblock struct {
	start uint64
	units []unit
	succs []*mblock
}

type paramInfo struct{ fp bool }

type retKind int

const (
	retVoid retKind = iota
	retInt
	retF64
)

// mfunc is a reconstructed machine function.
type mfunc struct {
	sym    obj.Symbol
	blocks []*mblock
	params []paramInfo
	ret    retKind
}

func buildCFG(sym obj.Symbol, units []unit) (*mfunc, error) {
	end := sym.Addr + sym.Size
	leaders := map[uint64]bool{sym.Addr: true}
	for _, u := range units {
		if u.kind != unitInst {
			continue
		}
		in := u.inst
		if tgt, ok := in.BranchTarget(); ok && in.Op != arm64.BL {
			if tgt < sym.Addr || tgt >= end {
				return nil, fmt.Errorf("branch to %#x outside function", tgt)
			}
			leaders[tgt] = true
		}
		if in.IsTerminator() {
			leaders[in.Addr+4] = true
		}
	}
	byStart := map[uint64]*mblock{}
	mf := &mfunc{sym: sym}
	var cur *mblock
	for _, u := range units {
		if leaders[u.uaddr()] || cur == nil {
			cur = &mblock{start: u.uaddr()}
			byStart[u.uaddr()] = cur
			mf.blocks = append(mf.blocks, cur)
		}
		cur.units = append(cur.units, u)
	}
	for _, b := range mf.blocks {
		last := b.units[len(b.units)-1]
		next := last.uaddr() + uint64(last.ulen())
		addSucc := func(a uint64) error {
			s, ok := byStart[a]
			if !ok {
				return fmt.Errorf("no block at %#x", a)
			}
			b.succs = append(b.succs, s)
			return nil
		}
		if last.kind != unitInst {
			if next < end {
				if err := addSucc(next); err != nil {
					return nil, err
				}
			}
			continue
		}
		in := last.inst
		switch in.Op {
		case arm64.RET, arm64.BR:
		case arm64.B:
			if err := addSucc(uint64(in.Imm)); err != nil {
				return nil, err
			}
		case arm64.BCOND, arm64.CBZ, arm64.CBNZ:
			if err := addSucc(uint64(in.Imm)); err != nil {
				return nil, err
			}
			if next < end {
				if err := addSucc(next); err != nil {
					return nil, err
				}
			}
		default:
			if next < end {
				if err := addSucc(next); err != nil {
					return nil, err
				}
			}
		}
	}
	sort.Slice(mf.blocks, func(i, j int) bool { return mf.blocks[i].start < mf.blocks[j].start })
	return mf, nil
}

// discoverType recovers parameters (X0-X7/D0-D7 live-in at entry) and the
// return kind (X0/D0 defined before RET), mirroring §4.1 for the AAPCS.
func discoverType(mf *mfunc) {
	entry := mf.blocks[0]
	usedBeforeDef := func(r arm64.Reg) bool {
		defined := map[arm64.Reg]bool{}
		for _, u := range entry.units {
			uses, defs := unitUseDef(u)
			for _, x := range uses {
				if x == r && !defined[r] {
					return true
				}
			}
			for _, d := range defs {
				defined[d] = true
			}
		}
		return false
	}
	for i := 0; i < 8; i++ {
		if !usedBeforeDef(arm64.X0 + arm64.Reg(i)) {
			break
		}
		mf.params = append(mf.params, paramInfo{fp: false})
	}
	for i := 0; i < 8; i++ {
		if !usedBeforeDef(arm64.D0 + arm64.Reg(i)) {
			break
		}
		mf.params = append(mf.params, paramInfo{fp: true})
	}
	// Return kind: walk back from RET blocks looking for X0/D0 defs.
	mf.ret = retVoid
	for _, b := range mf.blocks {
		last := b.units[len(b.units)-1]
		if last.kind != unitInst || last.inst.Op != arm64.RET {
			continue
		}
	scan:
		for i := len(b.units) - 2; i >= 0; i-- {
			u := b.units[i]
			if u.kind == unitInst && u.inst.Op == arm64.BL {
				break
			}
			_, defs := unitUseDef(u)
			for _, d := range defs {
				if d == arm64.X0 {
					mf.ret = retInt
					break scan
				}
				if d == arm64.D0 {
					mf.ret = retF64
					break scan
				}
			}
		}
	}
}

// unitUseDef returns registers read and written by a unit (approximate; SP
// and XZR excluded).
func unitUseDef(u unit) (uses, defs []arm64.Reg) {
	norm := func(rs []arm64.Reg) []arm64.Reg {
		var out []arm64.Reg
		for _, r := range rs {
			if r == arm64.XZR || r == arm64.SP || r == arm64.RegNone {
				continue
			}
			out = append(out, r)
		}
		return out
	}
	if u.kind == unitCAS {
		return norm([]arm64.Reg{u.addrReg, u.operand, u.expect}), norm([]arm64.Reg{u.result})
	}
	if u.kind == unitRMW {
		return norm([]arm64.Reg{u.addrReg, u.operand}), norm([]arm64.Reg{u.result})
	}
	in := u.inst
	switch in.Op {
	case arm64.ADD, arm64.SUB, arm64.SUBS, arm64.AND, arm64.ORR, arm64.EOR,
		arm64.SDIV, arm64.UDIV, arm64.LSLV, arm64.LSRV, arm64.ASRV,
		arm64.FADD, arm64.FSUB, arm64.FMUL, arm64.FDIV, arm64.CSEL, arm64.CSINC:
		return norm([]arm64.Reg{in.Rn, in.Rm}), norm([]arm64.Reg{in.Rd})
	case arm64.ADDI, arm64.SUBI, arm64.SUBSI, arm64.LSLI, arm64.LSRI, arm64.ASRI,
		arm64.SXTB, arm64.SXTH, arm64.SXTW, arm64.UXTB, arm64.UXTH,
		arm64.FMOV, arm64.FMOVTOG, arm64.FMOVTOF, arm64.SCVTF, arm64.FCVTZS,
		arm64.FCVTDS, arm64.FCVTSD, arm64.FSQRT:
		return norm([]arm64.Reg{in.Rn}), norm([]arm64.Reg{in.Rd})
	case arm64.MADD, arm64.MSUB:
		return norm([]arm64.Reg{in.Rn, in.Rm, in.Ra}), norm([]arm64.Reg{in.Rd})
	case arm64.MOVZ, arm64.MOVN:
		return nil, norm([]arm64.Reg{in.Rd})
	case arm64.MOVK:
		return norm([]arm64.Reg{in.Rd}), norm([]arm64.Reg{in.Rd})
	case arm64.LDR, arm64.LDUR, arm64.LDRSB, arm64.LDRSH, arm64.LDRSW:
		return norm([]arm64.Reg{in.Rn}), norm([]arm64.Reg{in.Rd})
	case arm64.LDRR:
		return norm([]arm64.Reg{in.Rn, in.Rm}), norm([]arm64.Reg{in.Rd})
	case arm64.STR, arm64.STUR:
		return norm([]arm64.Reg{in.Rd, in.Rn}), nil
	case arm64.STRR:
		return norm([]arm64.Reg{in.Rd, in.Rn, in.Rm}), nil
	case arm64.FCMP:
		return norm([]arm64.Reg{in.Rn, in.Rm}), nil
	case arm64.CBZ, arm64.CBNZ:
		return norm([]arm64.Reg{in.Rd}), nil
	case arm64.BL:
		// Calls clobber caller-saved registers; argument registers are
		// read before the call (same approximation as the x86 lifter).
		var defs []arm64.Reg
		for r := arm64.X0; r <= arm64.X18; r++ {
			defs = append(defs, r)
		}
		for r := arm64.D0; r <= arm64.D31; r++ {
			defs = append(defs, r)
		}
		return nil, defs
	case arm64.BLR, arm64.BR:
		return norm([]arm64.Reg{in.Rn}), nil
	}
	return nil, nil
}

package armlifter

import (
	"fmt"

	"lasagne/internal/arm64"
	"lasagne/internal/ir"
	"lasagne/internal/obj"
)

type lifter struct {
	file  *obj.File
	mod   *ir.Module
	funcs map[string]*mfunc
}

// NZCV flag indices.
const (
	fN = iota
	fZ
	fC
	fV
	numFlags
)

type fnLifter struct {
	l  *lifter
	mf *mfunc
	f  *ir.Func
	b  *ir.Builder

	irBlocks map[uint64]*ir.Block
	regSlot  map[arm64.Reg]*ir.Instr
	flagSlot [numFlags]*ir.Instr
	stack    *ir.Instr
	stackTop ir.Value

	regVal map[arm64.Reg]ir.Value

	spKnown   bool
	spOff     int64
	snapKnown bool
	snapOff   int64
}

func (l *lifter) liftFunc(mf *mfunc) error {
	f := l.mod.Func(mf.sym.Name)
	fl := &fnLifter{l: l, mf: mf, f: f, irBlocks: map[uint64]*ir.Block{}, regSlot: map[arm64.Reg]*ir.Instr{}}

	// Frame size: sum of prologue SP decrements plus slack.
	var frame int64 = 64
	for _, b := range mf.blocks {
		for _, u := range b.units {
			if u.kind == unitInst && u.inst.Op == arm64.SUBI && u.inst.Rd == arm64.SP && u.inst.Rn == arm64.SP {
				frame += u.inst.Imm
			}
		}
	}
	frame = (frame + 15) &^ 15

	entry := f.NewBlock("entry")
	fl.b = ir.NewBuilder(entry)
	fl.stack = fl.b.Alloca(ir.ArrayOf(ir.I8, int(frame)))
	fl.stack.Nam = "stack"
	fl.stackTop = fl.b.Bitcast(fl.stack, ir.PointerTo(ir.I8))
	fl.stackTop.(*ir.Instr).Nam = "stacktop"
	for i := 0; i < numFlags; i++ {
		fl.flagSlot[i] = fl.b.Alloca(ir.I1)
	}
	fl.flagSlot[fN].Nam, fl.flagSlot[fZ].Nam = "nf", "zf"
	fl.flagSlot[fC].Nam, fl.flagSlot[fV].Nam = "cf", "vf"
	fl.spKnown = true
	fl.spOff = frame - 16

	for _, mb := range mf.blocks {
		fl.irBlocks[mb.start] = f.NewBlock(fmt.Sprintf("bb_%x", mb.start))
	}

	fl.regVal = map[arm64.Reg]ir.Value{}
	intIdx, fpIdx := 0, 0
	for i, p := range mf.params {
		pv := f.Params[i]
		if p.fp {
			fl.writeReg(arm64.D0+arm64.Reg(fpIdx), fl.b.Bitcast(pv, ir.I64))
			fpIdx++
		} else {
			fl.writeReg(arm64.X0+arm64.Reg(intIdx), pv)
			intIdx++
		}
	}
	fl.b.Br(fl.irBlocks[mf.blocks[0].start])

	for i, mb := range mf.blocks {
		fl.b = ir.NewBuilder(fl.irBlocks[mb.start])
		fl.regVal = map[arm64.Reg]ir.Value{}
		if i > 0 {
			fl.spKnown, fl.spOff = fl.snapKnown, fl.snapOff
		}
		if err := fl.liftBlock(mb); err != nil {
			return err
		}
		if i == 0 {
			fl.snapKnown, fl.snapOff = fl.spKnown, fl.spOff
		}
	}
	return nil
}

func (fl *fnLifter) slot(r arm64.Reg) *ir.Instr {
	if s, ok := fl.regSlot[r]; ok {
		return s
	}
	entry := fl.f.Entry()
	s := &ir.Instr{Op: ir.OpAlloca, Ty: ir.PointerTo(ir.I64), Elem: ir.I64, Nam: r.String()}
	entry.InsertBefore(s, entry.Instrs[0])
	fl.regSlot[r] = s
	return s
}

// readReg returns the 64-bit value of a register (XZR reads zero).
func (fl *fnLifter) readReg(r arm64.Reg) ir.Value {
	if r == arm64.XZR {
		return ir.I64Const(0)
	}
	if r == arm64.SP {
		if fl.spKnown {
			return fl.frameAddr(fl.spOff)
		}
		// fall through to a slot (never written in our binaries)
	}
	if v, ok := fl.regVal[r]; ok {
		return v
	}
	v := fl.b.Load(fl.slot(r))
	fl.regVal[r] = v
	return v
}

// readRegW reads the low w bytes.
func (fl *fnLifter) readRegW(r arm64.Reg, w int) ir.Value {
	v := fl.readReg(r)
	if w == 8 {
		return v
	}
	return fl.b.Trunc(v, intType(w))
}

func (fl *fnLifter) writeReg(r arm64.Reg, v ir.Value) {
	if r == arm64.XZR {
		return
	}
	fl.regVal[r] = fl.maybeSymbolize(v)
	fl.b.Store(fl.regVal[r], fl.slot(r))
}

// writeRegW writes an iW value zero-extended (A64 semantics: 32-bit results
// zero the upper half; byte/half writes only occur via loads which also
// zero-extend).
func (fl *fnLifter) writeRegW(r arm64.Reg, w int, v ir.Value) {
	if w == 8 {
		fl.writeReg(r, v)
		return
	}
	fl.writeReg(r, fl.b.Zext(v, ir.I64))
}

func intType(w int) *ir.IntType {
	switch w {
	case 1:
		return ir.I8
	case 2:
		return ir.I16
	case 4:
		return ir.I32
	}
	return ir.I64
}

func (fl *fnLifter) frameAddr(off int64) ir.Value {
	tos := fl.b.PtrToInt(fl.stackTop, ir.I64)
	if off == 0 {
		return tos
	}
	return fl.b.Add(tos, ir.I64Const(off))
}

// maybeSymbolize rediscovers global/function references in constants that
// were composed by MOVZ/MOVK sequences.
func (fl *fnLifter) maybeSymbolize(v ir.Value) ir.Value {
	c, ok := v.(*ir.ConstInt)
	if !ok {
		return v
	}
	sym := fl.l.file.SymbolAt(uint64(c.V))
	if sym == nil {
		return v
	}
	switch sym.Kind {
	case obj.SymData:
		g := fl.l.mod.Global(sym.Name)
		if g == nil {
			return v
		}
		p := fl.b.Bitcast(g, ir.PointerTo(ir.I8))
		base := fl.b.PtrToInt(p, ir.I64)
		if off := c.V - int64(sym.Addr); off != 0 {
			return fl.b.Add(base, ir.I64Const(off))
		}
		return base
	case obj.SymFunc, obj.SymExtern:
		if uint64(c.V) != sym.Addr {
			return v
		}
		fn := fl.l.mod.Func(sym.Name)
		if fn == nil {
			return v
		}
		p := fl.b.Bitcast(fn, ir.PointerTo(ir.I8))
		return fl.b.PtrToInt(p, ir.I64)
	}
	return v
}

func (fl *fnLifter) setFlag(i int, v ir.Value) { fl.b.Store(v, fl.flagSlot[i]) }
func (fl *fnLifter) getFlag(i int) ir.Value    { return fl.b.Load(fl.flagSlot[i]) }

// flagsSub materializes NZCV for a-b at width w.
func (fl *fnLifter) flagsSub(a, b ir.Value) {
	ty := a.Type().(*ir.IntType)
	zero := ir.IntConst(ty, 0)
	r := fl.b.Sub(a, b)
	fl.setFlag(fN, fl.b.ICmp(ir.PredSLT, r, zero))
	fl.setFlag(fZ, fl.b.ICmp(ir.PredEQ, a, b))
	fl.setFlag(fC, fl.b.ICmp(ir.PredUGE, a, b))
	x1 := fl.b.Xor(a, b)
	x2 := fl.b.Xor(a, r)
	fl.setFlag(fV, fl.b.ICmp(ir.PredSLT, fl.b.And(x1, x2), zero))
}

// cond materializes an i1 for an A64 condition from the flag slots.
func (fl *fnLifter) cond(cc arm64.Cond) ir.Value {
	not := func(v ir.Value) ir.Value { return fl.b.Xor(v, ir.I1Const(true)) }
	switch cc {
	case arm64.EQ:
		return fl.getFlag(fZ)
	case arm64.NE:
		return not(fl.getFlag(fZ))
	case arm64.HS:
		return fl.getFlag(fC)
	case arm64.LO:
		return not(fl.getFlag(fC))
	case arm64.MI:
		return fl.getFlag(fN)
	case arm64.PL:
		return not(fl.getFlag(fN))
	case arm64.VS:
		return fl.getFlag(fV)
	case arm64.VC:
		return not(fl.getFlag(fV))
	case arm64.HI:
		return fl.b.And(fl.getFlag(fC), not(fl.getFlag(fZ)))
	case arm64.LS:
		return fl.b.Or(not(fl.getFlag(fC)), fl.getFlag(fZ))
	case arm64.GE:
		return not(fl.b.Xor(fl.getFlag(fN), fl.getFlag(fV)))
	case arm64.LT:
		return fl.b.Xor(fl.getFlag(fN), fl.getFlag(fV))
	case arm64.GT:
		return fl.b.And(not(fl.getFlag(fZ)), not(fl.b.Xor(fl.getFlag(fN), fl.getFlag(fV))))
	case arm64.LE:
		return fl.b.Or(fl.getFlag(fZ), fl.b.Xor(fl.getFlag(fN), fl.getFlag(fV)))
	}
	return ir.I1Const(true)
}

// FP helpers: D-register slots hold raw bits as i64.
func (fl *fnLifter) readF64(r arm64.Reg) ir.Value {
	return fl.b.Bitcast(fl.readReg(r), ir.F64)
}

func (fl *fnLifter) writeF64(r arm64.Reg, v ir.Value) {
	fl.writeReg(r, fl.b.Bitcast(v, ir.I64))
}

func (fl *fnLifter) liftBlock(mb *mblock) error {
	for i, u := range mb.units {
		last := i == len(mb.units)-1
		if u.kind != unitInst {
			fl.liftAtomic(u)
			if last && len(mb.succs) == 1 {
				fl.b.Br(fl.irBlocks[mb.succs[0].start])
			}
			continue
		}
		in := u.inst
		switch in.Op {
		case arm64.B:
			fl.b.Br(fl.irBlocks[uint64(in.Imm)])
			return nil
		case arm64.BCOND:
			c := fl.cond(in.Cond)
			fl.b.CondBr(c, fl.irBlocks[uint64(in.Imm)], fl.irBlocks[mb.succs[1].start])
			return nil
		case arm64.CBZ, arm64.CBNZ:
			v := fl.readRegW(in.Rd, widthOf(in.Size))
			pred := ir.PredEQ
			if in.Op == arm64.CBNZ {
				pred = ir.PredNE
			}
			c := fl.b.ICmp(pred, v, ir.IntConst(intType(widthOf(in.Size)), 0))
			fl.b.CondBr(c, fl.irBlocks[uint64(in.Imm)], fl.irBlocks[mb.succs[1].start])
			return nil
		case arm64.RET:
			switch fl.mf.ret {
			case retInt:
				fl.b.Ret(fl.readReg(arm64.X0))
			case retF64:
				fl.b.Ret(fl.readF64(arm64.D0))
			default:
				fl.b.Ret(nil)
			}
			return nil
		default:
			if err := fl.liftInst(in); err != nil {
				return fmt.Errorf("at %#x (%s): %w", in.Addr, in.String(), err)
			}
		}
		if last {
			if len(mb.succs) != 1 {
				return fmt.Errorf("block at %#x falls off the end", mb.start)
			}
			fl.b.Br(fl.irBlocks[mb.succs[0].start])
		}
	}
	return nil
}

// liftAtomic lowers a recognized LL/SC idiom to a seq_cst atomic.
func (fl *fnLifter) liftAtomic(u unit) {
	b := fl.b
	addr := fl.readReg(u.addrReg)
	w := widthOf(u.size)
	p := b.IntToPtr(addr, ir.PointerTo(intType(w)))
	switch u.kind {
	case unitRMW:
		operand := fl.readRegW(u.operand, w)
		old := b.RMW(u.rmwOp, p, operand)
		fl.writeRegW(u.result, w, old)
	case unitCAS:
		expect := fl.readRegW(u.expect, w)
		newV := fl.readRegW(u.operand, w)
		old := b.CmpXchg(p, expect, newV)
		fl.flagsSub(expect, old)
		fl.writeRegW(u.result, w, old)
	}
}

func widthOf(size int) int {
	if size == 0 {
		return 8
	}
	return size
}

func (fl *fnLifter) liftInst(in arm64.Inst) error {
	b := fl.b
	w := widthOf(in.Size)

	switch in.Op {
	case arm64.NOP:
		return nil

	case arm64.DMB:
		// Appendix B: DMBLD -> Frm, DMBST -> Fww, DMBFF -> Fsc.
		switch in.Barrier {
		case arm64.BarrierISHLD:
			b.Fence(ir.FenceRM)
		case arm64.BarrierISHST:
			b.Fence(ir.FenceWW)
		default:
			b.Fence(ir.FenceSC)
		}
		return nil

	case arm64.ADD, arm64.SUB, arm64.AND, arm64.ORR, arm64.EOR, arm64.SUBS:
		a := fl.readRegW(in.Rn, w)
		c := fl.readRegW(in.Rm, w)
		var r ir.Value
		switch in.Op {
		case arm64.ADD:
			r = b.Add(a, c)
		case arm64.SUB:
			r = b.Sub(a, c)
		case arm64.SUBS:
			fl.flagsSub(a, c)
			r = b.Sub(a, c)
		case arm64.AND:
			r = b.And(a, c)
		case arm64.ORR:
			r = b.Or(a, c)
		case arm64.EOR:
			r = b.Xor(a, c)
		}
		fl.writeRegW(in.Rd, w, r)
		return nil

	case arm64.ADDI, arm64.SUBI, arm64.SUBSI:
		// Symbolic SP adjustment.
		if in.Rd == arm64.SP && in.Rn == arm64.SP && fl.spKnown && in.Op != arm64.SUBSI {
			if in.Op == arm64.ADDI {
				fl.spOff += in.Imm
			} else {
				fl.spOff -= in.Imm
			}
			return nil
		}
		a := fl.readRegW(in.Rn, w)
		c := ir.IntConst(intType(w), in.Imm)
		switch in.Op {
		case arm64.ADDI:
			fl.writeRegW(in.Rd, w, b.Add(a, c))
		case arm64.SUBI:
			fl.writeRegW(in.Rd, w, b.Sub(a, c))
		case arm64.SUBSI:
			fl.flagsSub(a, c)
			fl.writeRegW(in.Rd, w, b.Sub(a, c))
		}
		return nil

	case arm64.MADD, arm64.MSUB:
		a := fl.readRegW(in.Rn, w)
		c := fl.readRegW(in.Rm, w)
		acc := fl.readRegW(in.Ra, w)
		prod := b.Mul(a, c)
		if in.Op == arm64.MADD {
			fl.writeRegW(in.Rd, w, b.Add(acc, prod))
		} else {
			fl.writeRegW(in.Rd, w, b.Sub(acc, prod))
		}
		return nil

	case arm64.SDIV, arm64.UDIV:
		a := fl.readRegW(in.Rn, w)
		c := fl.readRegW(in.Rm, w)
		op := ir.OpSDiv
		if in.Op == arm64.UDIV {
			op = ir.OpUDiv
		}
		// A64 division by zero yields 0: guard with a select.
		zero := ir.IntConst(intType(w), 0)
		isZero := b.ICmp(ir.PredEQ, c, zero)
		safe := b.Select(isZero, ir.IntConst(intType(w), 1), c)
		q := b.Bin(op, a, safe)
		fl.writeRegW(in.Rd, w, b.Select(isZero, zero, q))
		return nil

	case arm64.LSLV, arm64.LSRV, arm64.ASRV, arm64.LSLI, arm64.LSRI, arm64.ASRI:
		a := fl.readRegW(in.Rn, w)
		var cnt ir.Value
		switch in.Op {
		case arm64.LSLI, arm64.LSRI, arm64.ASRI:
			cnt = ir.IntConst(intType(w), in.Imm)
		default:
			cnt = b.And(fl.readRegW(in.Rm, w), ir.IntConst(intType(w), int64(w*8-1)))
		}
		var r ir.Value
		switch in.Op {
		case arm64.LSLV, arm64.LSLI:
			r = b.Shl(a, cnt)
		case arm64.LSRV, arm64.LSRI:
			r = b.Bin(ir.OpLShr, a, cnt)
		default:
			r = b.Bin(ir.OpAShr, a, cnt)
		}
		fl.writeRegW(in.Rd, w, r)
		return nil

	case arm64.SXTB, arm64.SXTH, arm64.SXTW:
		srcW := map[arm64.Op]int{arm64.SXTB: 1, arm64.SXTH: 2, arm64.SXTW: 4}[in.Op]
		v := fl.readRegW(in.Rn, srcW)
		fl.writeReg(in.Rd, b.Sext(v, ir.I64))
		return nil
	case arm64.UXTB, arm64.UXTH:
		srcW := 1
		if in.Op == arm64.UXTH {
			srcW = 2
		}
		v := fl.readRegW(in.Rn, srcW)
		fl.writeReg(in.Rd, b.Zext(v, ir.I64))
		return nil

	case arm64.MOVZ:
		fl.writeReg(in.Rd, ir.I64Const(in.Imm<<(16*uint(in.Shift))))
		return nil
	case arm64.MOVN:
		fl.writeReg(in.Rd, ir.I64Const(^(in.Imm << (16 * uint(in.Shift)))))
		return nil
	case arm64.MOVK:
		sh := 16 * uint(in.Shift)
		old := fl.readReg(in.Rd)
		// Fold constant compositions so addresses symbolize.
		if c, ok := old.(*ir.ConstInt); ok {
			nv := c.V&^(0xFFFF<<sh) | in.Imm<<sh
			fl.writeReg(in.Rd, ir.I64Const(nv))
			return nil
		}
		cleared := b.And(old, ir.I64Const(^(0xFFFF << sh)))
		fl.writeReg(in.Rd, b.Or(cleared, ir.I64Const(in.Imm<<sh)))
		return nil

	case arm64.CSEL, arm64.CSINC:
		c := fl.cond(in.Cond)
		a := fl.readRegW(in.Rn, w)
		d := fl.readRegW(in.Rm, w)
		if in.Op == arm64.CSINC {
			d = b.Add(d, ir.IntConst(intType(w), 1))
		}
		fl.writeRegW(in.Rd, w, b.Select(c, a, d))
		return nil

	case arm64.LDR, arm64.LDUR, arm64.LDRR:
		addr := fl.loadStoreAddr(in)
		if in.Rd.IsFP() {
			ty := ir.Type(ir.F64)
			if in.Size == 4 {
				ty = ir.F32
			}
			p := b.IntToPtr(addr, ir.PointerTo(ty))
			v := b.Load(p)
			if in.Size == 4 {
				bits := b.Bitcast(v, &ir.IntType{Bits: 32})
				fl.writeReg(in.Rd, b.Zext(bits, ir.I64))
			} else {
				fl.writeF64(in.Rd, v)
			}
			return nil
		}
		p := b.IntToPtr(addr, ir.PointerTo(intType(in.Size)))
		v := b.Load(p)
		fl.writeRegW(in.Rd, in.Size, v)
		return nil

	case arm64.STR, arm64.STUR, arm64.STRR:
		addr := fl.loadStoreAddr(in)
		if in.Rd.IsFP() {
			if in.Size == 4 {
				bits := b.Trunc(fl.readReg(in.Rd), &ir.IntType{Bits: 32})
				v := b.Bitcast(bits, ir.F32)
				p := b.IntToPtr(addr, ir.PointerTo(ir.F32))
				b.Store(v, p)
			} else {
				p := b.IntToPtr(addr, ir.PointerTo(ir.F64))
				b.Store(fl.readF64(in.Rd), p)
			}
			return nil
		}
		p := b.IntToPtr(addr, ir.PointerTo(intType(in.Size)))
		b.Store(fl.readRegW(in.Rd, in.Size), p)
		return nil

	case arm64.LDRSB, arm64.LDRSH, arm64.LDRSW:
		addr := fl.loadStoreAddr(in)
		p := b.IntToPtr(addr, ir.PointerTo(intType(in.Size)))
		v := b.Load(p)
		fl.writeReg(in.Rd, b.Sext(v, ir.I64))
		return nil

	case arm64.LDAR:
		// Acquire load round-trips to an acquire-ordered IR load, keeping
		// its ordering through a re-translation instead of degrading to a
		// plain access.
		addr := fl.readReg(in.Rn)
		p := b.IntToPtr(addr, ir.PointerTo(intType(in.Size)))
		v := b.LoadAtomic(p, ir.Acquire)
		fl.writeRegW(in.Rd, in.Size, v)
		return nil

	case arm64.STLR:
		addr := fl.readReg(in.Rn)
		p := b.IntToPtr(addr, ir.PointerTo(intType(in.Size)))
		b.StoreAtomic(fl.readRegW(in.Rd, in.Size), p, ir.Release)
		return nil

	case arm64.BL:
		return fl.liftCall(in)

	case arm64.FADD, arm64.FSUB, arm64.FMUL, arm64.FDIV:
		op := map[arm64.Op]ir.Op{arm64.FADD: ir.OpFAdd, arm64.FSUB: ir.OpFSub, arm64.FMUL: ir.OpFMul, arm64.FDIV: ir.OpFDiv}[in.Op]
		if in.Size == 4 {
			a := fl.readF32(in.Rn)
			c := fl.readF32(in.Rm)
			fl.writeF32(in.Rd, b.Bin(op, a, c))
			return nil
		}
		fl.writeF64(in.Rd, b.Bin(op, fl.readF64(in.Rn), fl.readF64(in.Rm)))
		return nil

	case arm64.FCMP:
		var a, c ir.Value
		if in.Size == 4 {
			a, c = fl.readF32(in.Rn), fl.readF32(in.Rm)
		} else {
			a, c = fl.readF64(in.Rn), fl.readF64(in.Rm)
		}
		// NZCV per A64 FCMP: see the simulator's table.
		olt := b.FCmp(ir.PredOLT, a, c)
		oeq := b.FCmp(ir.PredOEQ, a, c)
		uno := b.FCmp(ir.PredUNO, a, c)
		fl.setFlag(fN, olt)
		fl.setFlag(fZ, oeq)
		// C = a >= c or unordered.
		oge := b.FCmp(ir.PredOGE, a, c)
		fl.setFlag(fC, b.Or(oge, uno))
		fl.setFlag(fV, uno)
		return nil

	case arm64.FMOV:
		fl.writeReg(in.Rd, fl.readReg(in.Rn))
		return nil
	case arm64.FMOVTOG:
		fl.writeRegW(in.Rd, in.Size, fl.readRegW(in.Rn, in.Size))
		return nil
	case arm64.FMOVTOF:
		v := fl.readRegW(in.Rn, in.Size)
		if in.Size == 4 {
			fl.writeReg(in.Rd, b.Zext(v, ir.I64))
		} else {
			fl.writeReg(in.Rd, v)
		}
		return nil

	case arm64.SCVTF:
		v := fl.readReg(in.Rn)
		if in.Size == 4 {
			fl.writeF32(in.Rd, b.SIToFP(v, ir.F32))
		} else {
			fl.writeF64(in.Rd, b.SIToFP(v, ir.F64))
		}
		return nil
	case arm64.FCVTZS:
		var v ir.Value
		if in.Size == 4 {
			v = fl.readF32(in.Rn)
		} else {
			v = fl.readF64(in.Rn)
		}
		fl.writeReg(in.Rd, b.FPToSI(v, ir.I64))
		return nil
	case arm64.FCVTDS:
		fl.writeF64(in.Rd, b.Cast(ir.OpFPExt, fl.readF32(in.Rn), ir.F64))
		return nil
	case arm64.FCVTSD:
		fl.writeF32(in.Rd, b.Cast(ir.OpFPTrunc, fl.readF64(in.Rn), ir.F32))
		return nil
	}
	return fmt.Errorf("unsupported instruction %s", in.Op)
}

func (fl *fnLifter) readF32(r arm64.Reg) ir.Value {
	bits := fl.b.Trunc(fl.readReg(r), &ir.IntType{Bits: 32})
	return fl.b.Bitcast(bits, ir.F32)
}

func (fl *fnLifter) writeF32(r arm64.Reg, v ir.Value) {
	bits := fl.b.Bitcast(v, &ir.IntType{Bits: 32})
	fl.writeReg(r, fl.b.Zext(bits, ir.I64))
}

// loadStoreAddr computes the effective address of a load/store unit.
func (fl *fnLifter) loadStoreAddr(in arm64.Inst) ir.Value {
	b := fl.b
	if in.Rn == arm64.SP && fl.spKnown && in.Op != arm64.LDRR && in.Op != arm64.STRR {
		return fl.frameAddr(fl.spOff + in.Imm)
	}
	base := fl.readReg(in.Rn)
	switch in.Op {
	case arm64.LDRR, arm64.STRR:
		off := fl.readReg(in.Rm)
		if in.Imm == 1 {
			off = b.Shl(off, ir.I64Const(int64(shiftFor(in.Size))))
		}
		return b.Add(base, off)
	default:
		if in.Imm != 0 {
			return b.Add(base, ir.I64Const(in.Imm))
		}
		return base
	}
}

func shiftFor(size int) int {
	switch size {
	case 2:
		return 1
	case 4:
		return 2
	case 8:
		return 3
	}
	return 0
}

// liftCall translates a BL using the callee's discovered or runtime
// signature.
func (fl *fnLifter) liftCall(in arm64.Inst) error {
	sym := fl.l.file.SymbolAt(uint64(in.Imm))
	if sym == nil || (sym.Kind != obj.SymFunc && sym.Kind != obj.SymExtern) {
		return fmt.Errorf("call to unknown target %#x", uint64(in.Imm))
	}
	callee := fl.l.mod.Func(sym.Name)
	if callee == nil {
		return fmt.Errorf("call to unlifted function %q", sym.Name)
	}
	b := fl.b
	intIdx, fpIdx := 0, 0
	var args []ir.Value
	for _, pt := range callee.Sig.Params {
		switch t := pt.(type) {
		case *ir.FloatType:
			if t.Bits == 32 {
				args = append(args, fl.readF32(arm64.D0+arm64.Reg(fpIdx)))
			} else {
				args = append(args, fl.readF64(arm64.D0+arm64.Reg(fpIdx)))
			}
			fpIdx++
		case *ir.PtrType:
			raw := fl.readReg(arm64.X0 + arm64.Reg(intIdx))
			args = append(args, b.IntToPtr(raw, t))
			intIdx++
		default:
			args = append(args, fl.readReg(arm64.X0+arm64.Reg(intIdx)))
			intIdx++
		}
	}
	res := b.Call(callee, args...)
	switch rt := callee.Sig.Ret.(type) {
	case *ir.IntType:
		v := ir.Value(res)
		if rt.Bits < 64 {
			v = b.Zext(res, ir.I64)
		}
		fl.writeReg(arm64.X0, v)
	case *ir.FloatType:
		if rt.Bits == 32 {
			fl.writeF32(arm64.D0, res)
		} else {
			fl.writeF64(arm64.D0, res)
		}
	case *ir.PtrType:
		fl.writeReg(arm64.X0, b.PtrToInt(res, ir.I64))
	}
	return nil
}

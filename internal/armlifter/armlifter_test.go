package armlifter

import (
	"strings"
	"testing"

	"lasagne/internal/arm64"
	"lasagne/internal/backend"
	"lasagne/internal/ir"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
	"lasagne/internal/sim"
)

// armRoundTrip compiles minic source to an Arm64 binary, lifts it back to
// IR, and verifies the lifted IR (and, optionally after optimization, the
// regenerated x86-64 binary) reproduces the original output — the full
// Appendix B weak-to-strong direction.
func armRoundTrip(t *testing.T, src string) *ir.Module {
	t.Helper()
	orig, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Optimize(orig); err != nil {
		t.Fatal(err)
	}
	armBin, err := backend.Compile(orig, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	mach, err := sim.NewMachine(armBin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		t.Fatalf("arm run: %v", err)
	}
	want := mach.Out.String()

	lifted, err := Lift(armBin)
	if err != nil {
		t.Fatalf("lift: %v", err)
	}
	lip := ir.NewInterp(lifted)
	if _, err := lip.Run("main"); err != nil {
		t.Fatalf("lifted run: %v\n%s", err, lifted)
	}
	if got := lip.Out.String(); got != want {
		t.Fatalf("lifted output %q, want %q\n%s", got, want, lifted)
	}

	// Re-optimize and compile down to x86-64 (the Fsc->MFENCE direction).
	if err := opt.RunPipeline(lifted, opt.StandardPipeline, true); err != nil {
		t.Fatalf("opt: %v", err)
	}
	x86Bin, err := backend.Compile(lifted, "x86-64")
	if err != nil {
		t.Fatalf("x86 compile: %v", err)
	}
	xm, err := sim.NewMachine(x86Bin)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := xm.Run(); err != nil {
		t.Fatalf("x86 run: %v", err)
	}
	if got := xm.Out.String(); got != want {
		t.Fatalf("x86 output %q, want %q", got, want)
	}
	return lifted
}

func TestArmLiftArithmetic(t *testing.T) {
	armRoundTrip(t, `
int main() {
  int a = 12345;
  print_int(a * 7 - 11);
  print_int(a / 37);
  print_int(a % 37);
  print_int((a ^ 0xFF) & 0x3FF);
  print_int(a << 3);
  print_int((0 - a) >> 2);
  return 0;
}`)
}

func TestArmLiftControlFlowAndCalls(t *testing.T) {
	armRoundTrip(t, `
int gcd(int a, int b) {
  while (b != 0) {
    int tmp = a % b;
    a = b;
    b = tmp;
  }
  return a;
}
int main() {
  print_int(gcd(1071, 462));
  int i;
  int s = 0;
  for (i = 1; i <= 20; i = i + 1) if (i % 3 != 0) s = s + i * i;
  print_int(s);
  return 0;
}`)
}

func TestArmLiftGlobalsAndDoubles(t *testing.T) {
	m := armRoundTrip(t, `
double acc[16];
int n;
double series(int k) {
  double s = 0.0;
  int i;
  for (i = 1; i <= k; i = i + 1) s = s + 1.0 / (double)i;
  return s;
}
int main() {
  n = 16;
  int i;
  for (i = 0; i < n; i = i + 1) acc[i] = series(i + 1);
  print_float(acc[15]);
  print_int((int)(acc[7] * 1000.0));
  return 0;
}`)
	if m.Global("acc") == nil || m.Global("n") == nil {
		t.Fatal("globals not rediscovered")
	}
}

func TestArmLiftAtomicIdioms(t *testing.T) {
	lifted := armRoundTrip(t, `
int ctr;
int main() {
  atomic_add(&ctr, 5);
  print_int(atomic_add(&ctr, 3));
  print_int(atomic_cas(&ctr, 8, 42));
  print_int(ctr);
  fence();
  return 0;
}`)
	text := lifted.String()
	for _, want := range []string{"atomicrmw add", "cmpxchg", "fence.sc"} {
		if !strings.Contains(text, want) {
			t.Fatalf("lifted IR missing %q (LL/SC idiom not recognized?)\n%s", want, text)
		}
	}
	// The DMB fences around the idiom lift to Fsc; the x86 backend then
	// emits MFENCEs for them.
}

func TestArmLiftThreads(t *testing.T) {
	armRoundTrip(t, `
int total;
void worker(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) atomic_add(&total, i + 1);
}
int main() {
  spawn(worker, 5);
  spawn(worker, 10);
  join();
  print_int(total);
  return 0;
}`)
}

func TestArmLiftFenceMapping(t *testing.T) {
	// A hand-built IR module with all three fence kinds, compiled to Arm,
	// must lift back with DMBLD->Frm, DMBST->Fww, DMBFF->Fsc.
	m := ir.NewModule("t")
	g := m.NewGlobal("g", ir.I64)
	f := m.NewFunc("main", ir.Signature(ir.Void))
	b := ir.NewBuilder(f.NewBlock("entry"))
	b.Store(ir.I64Const(1), g)
	b.Fence(ir.FenceWW)
	b.Store(ir.I64Const(2), g)
	v := b.Load(g)
	b.Fence(ir.FenceRM)
	_ = v
	b.Fence(ir.FenceSC)
	b.Ret(nil)

	armBin, err := backend.Compile(m, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := Lift(armBin)
	if err != nil {
		t.Fatal(err)
	}
	text := lifted.String()
	for _, want := range []string{"fence.ww", "fence.rm", "fence.sc"} {
		if !strings.Contains(text, want) {
			t.Fatalf("missing %q in lifted IR:\n%s", want, text)
		}
	}
}

func TestArmLiftRejectsWrongArch(t *testing.T) {
	orig, _ := minic.Compile("t", "int main() { return 0; }")
	bin, err := backend.Compile(orig, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Lift(bin); err == nil {
		t.Fatal("expected arch error")
	}
}

// TestArmLiftIdiomRecognition checks the recognizer units directly.
func TestArmLiftIdiomRecognition(t *testing.T) {
	mkRMW := []arm64.Inst{
		{Op: arm64.LDXR, Size: 8, Rd: arm64.X10, Rn: arm64.X9, Addr: 0x100},
		{Op: arm64.ADD, Size: 8, Rd: arm64.X11, Rn: arm64.X10, Rm: arm64.X12, Addr: 0x104},
		{Op: arm64.STXR, Size: 8, Rd: arm64.X11, Rn: arm64.X9, Ra: arm64.X13, Addr: 0x108},
		{Op: arm64.CBNZ, Size: 8, Rd: arm64.X13, Imm: 0x100, Addr: 0x10c},
	}
	units, err := recognizeAtomics(mkRMW)
	if err != nil {
		t.Fatal(err)
	}
	if len(units) != 1 || units[0].kind != unitRMW || units[0].rmwOp != ir.RMWAdd {
		t.Fatalf("units: %+v", units)
	}
	// A stray LDXR without the loop shape must be rejected.
	_, err = recognizeAtomics(mkRMW[:1])
	if err == nil {
		t.Fatal("expected rejection of an unmatched ldxr")
	}
}

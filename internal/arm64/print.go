package arm64

import (
	"fmt"
	"strings"
)

// String renders the instruction in standard A64 assembly syntax.
func (i Inst) String() string {
	size := i.Size
	if size == 0 {
		size = 8
	}
	n := func(r Reg) string { return r.Name(size) }
	switch i.Op {
	case NOP:
		return "nop"
	case RET:
		return "ret"
	case BR:
		return fmt.Sprintf("br %s", i.Rn)
	case BLR:
		return fmt.Sprintf("blr %s", i.Rn)
	case B, BL:
		return fmt.Sprintf("%s %#x", i.Op, uint64(i.Imm))
	case BCOND:
		return fmt.Sprintf("b.%s %#x", i.Cond, uint64(i.Imm))
	case CBZ, CBNZ:
		return fmt.Sprintf("%s %s, %#x", i.Op, n(i.Rd), uint64(i.Imm))
	case ADD, SUB, SUBS, AND, ORR, EOR, SDIV, UDIV, LSLV, LSRV, ASRV:
		if i.Op == SUBS && i.Rd == XZR {
			return fmt.Sprintf("cmp %s, %s", n(i.Rn), n(i.Rm))
		}
		if i.Op == ORR && i.Rn == XZR {
			return fmt.Sprintf("mov %s, %s", n(i.Rd), n(i.Rm))
		}
		return fmt.Sprintf("%s %s, %s, %s", i.Op, n(i.Rd), n(i.Rn), n(i.Rm))
	case ADDI, SUBI, SUBSI:
		if i.Op == SUBSI && i.Rd == XZR {
			return fmt.Sprintf("cmp %s, #%d", n(i.Rn), i.Imm)
		}
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, n(i.Rd), n(i.Rn), i.Imm)
	case MADD, MSUB:
		if i.Ra == XZR && i.Op == MADD {
			return fmt.Sprintf("mul %s, %s, %s", n(i.Rd), n(i.Rn), n(i.Rm))
		}
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op, n(i.Rd), n(i.Rn), n(i.Rm), n(i.Ra))
	case LSLI, LSRI, ASRI:
		return fmt.Sprintf("%s %s, %s, #%d", i.Op, n(i.Rd), n(i.Rn), i.Imm)
	case SXTB, SXTH, SXTW, UXTB, UXTH:
		return fmt.Sprintf("%s %s, %s", i.Op, n(i.Rd), i.Rn.Name(4))
	case MOVZ, MOVN, MOVK:
		if i.Shift != 0 {
			return fmt.Sprintf("%s %s, #%d, lsl #%d", i.Op, n(i.Rd), i.Imm, i.Shift*16)
		}
		return fmt.Sprintf("%s %s, #%d", i.Op, n(i.Rd), i.Imm)
	case CSEL, CSINC:
		if i.Op == CSINC && i.Rn == XZR && i.Rm == XZR {
			return fmt.Sprintf("cset %s, %s", n(i.Rd), i.Cond.Invert())
		}
		return fmt.Sprintf("%s %s, %s, %s, %s", i.Op, n(i.Rd), n(i.Rn), n(i.Rm), i.Cond)
	case LDR, STR, LDUR, STUR, LDRSB, LDRSH, LDRSW:
		rt := i.Rd.Name(lsRegSize(i))
		if i.Imm == 0 {
			return fmt.Sprintf("%s %s, [%s]", i.Op, rt, i.Rn)
		}
		return fmt.Sprintf("%s %s, [%s, #%d]", i.Op, rt, i.Rn, i.Imm)
	case LDRR, STRR:
		rt := i.Rd.Name(lsRegSize(i))
		if i.Imm == 1 {
			return fmt.Sprintf("%s %s, [%s, %s, lsl #%d]", i.Op, rt, i.Rn, i.Rm, log2(size))
		}
		return fmt.Sprintf("%s %s, [%s, %s]", i.Op, rt, i.Rn, i.Rm)
	case LDXR, LDAXR:
		return fmt.Sprintf("%s %s, [%s]", i.Op, i.Rd.Name(size), i.Rn)
	case LDAR, STLR:
		// Sub-word widths get the B/H mnemonic suffix and a W register.
		mnem, rsize := i.Op.String(), size
		switch size {
		case 1:
			mnem, rsize = mnem+"b", 4
		case 2:
			mnem, rsize = mnem+"h", 4
		}
		return fmt.Sprintf("%s %s, [%s]", mnem, i.Rd.Name(rsize), i.Rn)
	case STXR, STLXR:
		return fmt.Sprintf("%s %s, %s, [%s]", i.Op, i.Ra.Name(4), i.Rd.Name(size), i.Rn)
	case DMB:
		return fmt.Sprintf("dmb %s", i.Barrier)
	case FADD, FSUB, FMUL, FDIV:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, n(i.Rd), n(i.Rn), n(i.Rm))
	case FSQRT, FMOV, FCVTDS, FCVTSD:
		return fmt.Sprintf("%s %s, %s", i.Op, fcvtName(i.Op, i.Rd, size, true), fcvtName(i.Op, i.Rn, size, false))
	case FCMP:
		return fmt.Sprintf("fcmp %s, %s", n(i.Rn), n(i.Rm))
	case FMOVTOG, FMOVTOF:
		return fmt.Sprintf("fmov %s, %s", i.Rd.Name(size), i.Rn.Name(size))
	case SCVTF:
		return fmt.Sprintf("scvtf %s, %s", i.Rd.Name(size), i.Rn.Name(8))
	case FCVTZS:
		return fmt.Sprintf("fcvtzs %s, %s", i.Rd.Name(8), i.Rn.Name(size))
	}
	return fmt.Sprintf("%s ???", i.Op)
}

func lsRegSize(i Inst) int {
	if i.Rd.IsFP() {
		return i.Size
	}
	switch i.Op {
	case LDRSB, LDRSH, LDRSW:
		return 8
	}
	if i.Size <= 4 {
		return 4
	}
	return 8
}

func fcvtName(op Op, r Reg, size int, isDst bool) string {
	switch op {
	case FCVTDS:
		if isDst {
			return r.Name(8)
		}
		return r.Name(4)
	case FCVTSD:
		if isDst {
			return r.Name(4)
		}
		return r.Name(8)
	}
	return r.Name(size)
}

func log2(n int) int {
	k := 0
	for n > 1 {
		n >>= 1
		k++
	}
	return k
}

// FormatCode renders a decoded instruction sequence one per line.
func FormatCode(insts []Inst) string {
	var b strings.Builder
	for _, in := range insts {
		fmt.Fprintf(&b, "%8x:  %s\n", in.Addr, in.String())
	}
	return b.String()
}

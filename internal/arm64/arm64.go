// Package arm64 models the A64 instruction subset targeted by the Lasagne
// pipeline, with genuine 32-bit instruction encodings. It covers integer
// data processing, loads/stores, exclusive (LL/SC) accesses, the three DMB
// barriers used by the IR-to-Arm mapping (DMB ISH, DMB ISHLD, DMB ISHST),
// branches and scalar floating point.
package arm64

import "fmt"

// Reg identifies an A64 register. X0-X30 are the general-purpose registers;
// XZR and SP share hardware encoding 31 and are distinguished here by
// context. D0-D31 are the FP/SIMD registers (used as S registers for
// 32-bit floats).
type Reg int

const (
	X0 Reg = iota
	X1
	X2
	X3
	X4
	X5
	X6
	X7
	X8
	X9
	X10
	X11
	X12
	X13
	X14
	X15
	X16
	X17
	X18
	X19
	X20
	X21
	X22
	X23
	X24
	X25
	X26
	X27
	X28
	X29 // frame pointer
	X30 // link register
	XZR
	SP
	D0
	D1
	D2
	D3
	D4
	D5
	D6
	D7
	D8
	D9
	D10
	D11
	D12
	D13
	D14
	D15
	D16
	D17
	D18
	D19
	D20
	D21
	D22
	D23
	D24
	D25
	D26
	D27
	D28
	D29
	D30
	D31
	RegNone Reg = -1
)

// IsGP reports whether r is a general-purpose register (including XZR/SP).
func (r Reg) IsGP() bool { return r >= X0 && r <= SP }

// IsFP reports whether r is an FP register.
func (r Reg) IsFP() bool { return r >= D0 && r <= D31 }

// Enc returns the 5-bit hardware encoding.
func (r Reg) Enc() uint32 {
	switch {
	case r == XZR || r == SP:
		return 31
	case r.IsFP():
		return uint32(r - D0)
	default:
		return uint32(r)
	}
}

func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "-"
	case r == XZR:
		return "xzr"
	case r == SP:
		return "sp"
	case r.IsFP():
		return fmt.Sprintf("d%d", r-D0)
	case r == X29:
		return "x29"
	case r == X30:
		return "x30"
	default:
		return fmt.Sprintf("x%d", int(r))
	}
}

// Name returns the register name at an operand width (w/x, s/d).
func (r Reg) Name(size int) string {
	if r.IsFP() {
		if size == 4 {
			return fmt.Sprintf("s%d", r-D0)
		}
		return fmt.Sprintf("d%d", r-D0)
	}
	if size == 4 && r != SP {
		if r == XZR {
			return "wzr"
		}
		return fmt.Sprintf("w%d", int(r))
	}
	return r.String()
}

// Cond is an A64 condition code (hardware encoding).
type Cond int

const (
	EQ Cond = 0x0
	NE Cond = 0x1
	HS Cond = 0x2 // unsigned >=
	LO Cond = 0x3 // unsigned <
	MI Cond = 0x4
	PL Cond = 0x5
	VS Cond = 0x6
	VC Cond = 0x7
	HI Cond = 0x8 // unsigned >
	LS Cond = 0x9 // unsigned <=
	GE Cond = 0xa
	LT Cond = 0xb
	GT Cond = 0xc
	LE Cond = 0xd
	AL Cond = 0xe
)

var condNames = [...]string{
	"eq", "ne", "hs", "lo", "mi", "pl", "vs", "vc",
	"hi", "ls", "ge", "lt", "gt", "le", "al", "nv",
}

func (c Cond) String() string {
	if int(c) < len(condNames) {
		return condNames[c]
	}
	return "?"
}

// Invert returns the opposite condition.
func (c Cond) Invert() Cond { return c ^ 1 }

// Barrier identifies a DMB variant.
type Barrier int

const (
	// BarrierISH is DMB ISH (full fence, the paper's DMBFF).
	BarrierISH Barrier = iota
	// BarrierISHLD is DMB ISHLD (the paper's DMBLD).
	BarrierISHLD
	// BarrierISHST is DMB ISHST (the paper's DMBST).
	BarrierISHST
)

func (b Barrier) String() string {
	switch b {
	case BarrierISH:
		return "ish"
	case BarrierISHLD:
		return "ishld"
	case BarrierISHST:
		return "ishst"
	}
	return "?"
}

// Op is an instruction mnemonic.
type Op int

const (
	BAD Op = iota
	// Data processing, register and immediate forms.
	ADD  // Rd = Rn + Rm
	ADDI // Rd = Rn + imm12
	SUB
	SUBI
	SUBS  // also CMP when Rd=XZR
	SUBSI // also CMP imm
	AND
	ORR // also MOV Rd, Rm when Rn=XZR
	EOR
	MADD // Rd = Ra + Rn*Rm (MUL when Ra=XZR)
	MSUB
	SDIV
	UDIV
	LSLV
	LSRV
	ASRV
	LSLI // immediate shifts (UBFM/SBFM aliases)
	LSRI
	ASRI
	SXTB // sign extensions (SBFM aliases)
	SXTH
	SXTW
	UXTB // zero extensions (UBFM aliases)
	UXTH
	MOVZ
	MOVN
	MOVK
	CSEL
	CSINC
	// Loads and stores. Size selects width; signed loads sign-extend to 64.
	LDR // unsigned scaled offset [Rn, #imm]
	STR
	LDRR // register offset [Rn, Rm]
	STRR
	LDUR // unscaled 9-bit signed offset
	STUR
	LDRSB
	LDRSH
	LDRSW
	// Exclusive accesses.
	LDXR
	STXR // Rs (status) in Ra field
	LDAXR
	STLXR
	// Acquire/release accesses (no exclusive monitor): the lowering targets
	// for ir.Acquire loads and ir.Release stores.
	LDAR
	STLR
	// Barriers.
	DMB
	// Branches.
	B
	BCOND
	BL
	BR
	BLR
	RET
	CBZ
	CBNZ
	// Floating point (scalar).
	FADD
	FSUB
	FMUL
	FDIV
	FSQRT
	FCMP
	FMOV    // fp <-> fp
	FMOVTOG // Xd <- Dn (bit move)
	FMOVTOF // Dd <- Xn
	SCVTF
	FCVTZS
	FCVTDS // double <- single
	FCVTSD // single <- double
	NOP
)

var opNames = map[Op]string{
	ADD: "add", ADDI: "add", SUB: "sub", SUBI: "sub", SUBS: "subs", SUBSI: "subs",
	AND: "and", ORR: "orr", EOR: "eor", MADD: "madd", MSUB: "msub",
	SDIV: "sdiv", UDIV: "udiv", LSLV: "lsl", LSRV: "lsr", ASRV: "asr",
	LSLI: "lsl", LSRI: "lsr", ASRI: "asr",
	SXTB: "sxtb", SXTH: "sxth", SXTW: "sxtw", UXTB: "uxtb", UXTH: "uxth",
	MOVZ: "movz", MOVN: "movn", MOVK: "movk", CSEL: "csel", CSINC: "csinc",
	LDR: "ldr", STR: "str", LDRR: "ldr", STRR: "str", LDUR: "ldur", STUR: "stur",
	LDRSB: "ldrsb", LDRSH: "ldrsh", LDRSW: "ldrsw",
	LDXR: "ldxr", STXR: "stxr", LDAXR: "ldaxr", STLXR: "stlxr",
	LDAR: "ldar", STLR: "stlr",
	DMB: "dmb", B: "b", BCOND: "b", BL: "bl", BR: "br", BLR: "blr", RET: "ret",
	CBZ: "cbz", CBNZ: "cbnz",
	FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv", FSQRT: "fsqrt",
	FCMP: "fcmp", FMOV: "fmov", FMOVTOG: "fmov", FMOVTOF: "fmov",
	SCVTF: "scvtf", FCVTZS: "fcvtzs", FCVTDS: "fcvt", FCVTSD: "fcvt",
	NOP: "nop",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Inst is one A64 instruction.
type Inst struct {
	Op             Op
	Cond           Cond
	Rd, Rn, Rm, Ra Reg
	Imm            int64 // immediate / offset / shift amount / imm16
	Shift          int   // hw field for MOVZ/MOVK (shift/16)
	Size           int   // operand width in bytes (4 or 8); FP: 4=S, 8=D
	Barrier        Barrier

	// Decoder metadata.
	Addr uint64
	Len  int
}

// IsTerminator reports whether the instruction ends a basic block.
func (i *Inst) IsTerminator() bool {
	switch i.Op {
	case B, BCOND, RET, BR, CBZ, CBNZ:
		return true
	}
	return false
}

// BranchTarget returns the absolute target of a direct branch (set by the
// decoder) or the raw immediate.
func (i *Inst) BranchTarget() (uint64, bool) {
	switch i.Op {
	case B, BL, BCOND, CBZ, CBNZ:
		return uint64(i.Imm), true
	}
	return 0, false
}

package arm64

import (
	"encoding/binary"
	"fmt"
)

// Decode decodes the 32-bit instruction word w located at address addr.
// Direct branch targets are resolved to absolute addresses in Imm.
func Decode(w uint32, addr uint64) (Inst, error) {
	in, err := decodeWord(w, addr)
	if err != nil {
		return Inst{}, fmt.Errorf("arm64: decode %#08x at %#x: %w", w, addr, err)
	}
	in.Addr = addr
	in.Len = 4
	return in, nil
}

// DecodeAll decodes a code region of little-endian instruction words.
func DecodeAll(code []byte, base uint64) ([]Inst, error) {
	if len(code)%4 != 0 {
		return nil, fmt.Errorf("arm64: code length %d not a multiple of 4", len(code))
	}
	out := make([]Inst, 0, len(code)/4)
	for i := 0; i < len(code); i += 4 {
		w := binary.LittleEndian.Uint32(code[i:])
		in, err := Decode(w, base+uint64(i))
		if err != nil {
			return out, err
		}
		out = append(out, in)
	}
	return out, nil
}

func signExtend(v uint32, bits int) int64 {
	shift := 64 - bits
	return int64(v) << shift >> shift
}

func gp(enc uint32, sp bool) Reg {
	if enc == 31 {
		if sp {
			return SP
		}
		return XZR
	}
	return Reg(enc)
}

func fp(enc uint32) Reg { return D0 + Reg(enc) }

func decodeWord(w uint32, addr uint64) (Inst, error) {
	sf := w >> 31
	size := 8
	if sf == 0 {
		size = 4
	}
	rd := w & 31
	rn := (w >> 5) & 31
	rm := (w >> 16) & 31
	ra := (w >> 10) & 31
	b := w & 0x7FFFFFFF // sf cleared

	switch {
	case w == 0xD503201F:
		return Inst{Op: NOP}, nil
	case w&0xFFFFF0FF == 0xD50330BF:
		crm := (w >> 8) & 0xF
		var bar Barrier
		switch crm {
		case 0xB:
			bar = BarrierISH
		case 0x9:
			bar = BarrierISHLD
		case 0xA:
			bar = BarrierISHST
		default:
			return Inst{}, fmt.Errorf("unsupported DMB CRm %#x", crm)
		}
		return Inst{Op: DMB, Barrier: bar}, nil
	case w&0xFFFFFC1F == 0xD65F0000:
		return Inst{Op: RET, Rn: gp(rn, false)}, nil
	case w&0xFFFFFC1F == 0xD61F0000:
		return Inst{Op: BR, Rn: gp(rn, false)}, nil
	case w&0xFFFFFC1F == 0xD63F0000:
		return Inst{Op: BLR, Rn: gp(rn, false)}, nil
	}

	// Unconditional immediate branches.
	switch w >> 26 {
	case 0x05: // B
		off := signExtend(w&0x3FFFFFF, 26) * 4
		return Inst{Op: B, Imm: int64(addr) + off}, nil
	case 0x25: // BL
		off := signExtend(w&0x3FFFFFF, 26) * 4
		return Inst{Op: BL, Imm: int64(addr) + off}, nil
	}
	if w&0xFF000010 == 0x54000000 {
		off := signExtend((w>>5)&0x7FFFF, 19) * 4
		return Inst{Op: BCOND, Cond: Cond(w & 0xF), Imm: int64(addr) + off}, nil
	}
	if b&0x7F000000 == 0x34000000 || b&0x7F000000 == 0x35000000 {
		op := CBZ
		if b&0x7F000000 == 0x35000000 {
			op = CBNZ
		}
		off := signExtend((w>>5)&0x7FFFF, 19) * 4
		return Inst{Op: op, Size: size, Rd: gp(rd, false), Imm: int64(addr) + off}, nil
	}

	// Data processing, shifted register (shift and amount always 0 here).
	switch b & 0x7FE0FC00 {
	case 0x0B000000:
		return Inst{Op: ADD, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x4B000000:
		return Inst{Op: SUB, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x6B000000:
		return Inst{Op: SUBS, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x0A000000:
		return Inst{Op: AND, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x2A000000:
		return Inst{Op: ORR, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x4A000000:
		return Inst{Op: EOR, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x1AC00C00:
		return Inst{Op: SDIV, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x1AC00800:
		return Inst{Op: UDIV, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x1AC02000:
		return Inst{Op: LSLV, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x1AC02400:
		return Inst{Op: LSRV, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	case 0x1AC02800:
		return Inst{Op: ASRV, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	}

	// Immediate arithmetic.
	switch b & 0x7FC00000 {
	case 0x11000000:
		return Inst{Op: ADDI, Size: size, Rd: gp(rd, true), Rn: gp(rn, true), Imm: int64((w >> 10) & 0xFFF)}, nil
	case 0x51000000:
		return Inst{Op: SUBI, Size: size, Rd: gp(rd, true), Rn: gp(rn, true), Imm: int64((w >> 10) & 0xFFF)}, nil
	case 0x71000000:
		return Inst{Op: SUBSI, Size: size, Rd: gp(rd, false), Rn: gp(rn, true), Imm: int64((w >> 10) & 0xFFF)}, nil
	}

	// MADD/MSUB.
	if b&0x7FE08000 == 0x1B000000 {
		return Inst{Op: MADD, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false), Ra: gp(ra, false)}, nil
	}
	if b&0x7FE08000 == 0x1B008000 {
		return Inst{Op: MSUB, Size: size, Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false), Ra: gp(ra, false)}, nil
	}

	// CSEL/CSINC.
	if b&0x7FE00C00 == 0x1A800000 {
		return Inst{Op: CSEL, Size: size, Cond: Cond((w >> 12) & 0xF), Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	}
	if b&0x7FE00C00 == 0x1A800400 {
		return Inst{Op: CSINC, Size: size, Cond: Cond((w >> 12) & 0xF), Rd: gp(rd, false), Rn: gp(rn, false), Rm: gp(rm, false)}, nil
	}

	// Move wide.
	switch b & 0x7F800000 {
	case 0x52800000:
		return Inst{Op: MOVZ, Size: size, Rd: gp(rd, false), Imm: int64((w >> 5) & 0xFFFF), Shift: int((w >> 21) & 3)}, nil
	case 0x12800000:
		return Inst{Op: MOVN, Size: size, Rd: gp(rd, false), Imm: int64((w >> 5) & 0xFFFF), Shift: int((w >> 21) & 3)}, nil
	case 0x72800000:
		return Inst{Op: MOVK, Size: size, Rd: gp(rd, false), Imm: int64((w >> 5) & 0xFFFF), Shift: int((w >> 21) & 3)}, nil
	}

	// Bitfield (UBFM/SBFM aliases).
	if b&0x7F800000 == 0x53000000 || b&0x7F800000 == 0x13000000 {
		signed := b&0x7F800000 == 0x13000000
		immr := int64((w >> 16) & 0x3F)
		imms := int64((w >> 10) & 0x3F)
		width := int64(64)
		if sf == 0 {
			width = 32
		}
		in := Inst{Size: size, Rd: gp(rd, false), Rn: gp(rn, false)}
		switch {
		case signed && immr == 0 && imms == 7:
			in.Op = SXTB
		case signed && immr == 0 && imms == 15:
			in.Op = SXTH
		case signed && immr == 0 && imms == 31 && sf == 1:
			in.Op = SXTW
		case !signed && sf == 0 && immr == 0 && imms == 7:
			in.Op = UXTB
		case !signed && sf == 0 && immr == 0 && imms == 15:
			in.Op = UXTH
		case imms == width-1 && signed:
			in.Op, in.Imm = ASRI, immr
		case imms == width-1:
			in.Op, in.Imm = LSRI, immr
		case !signed && immr == (width-(width-1-imms))%width:
			in.Op, in.Imm = LSLI, width-1-imms
		default:
			return Inst{}, fmt.Errorf("unsupported bitfield immr=%d imms=%d", immr, imms)
		}
		return in, nil
	}

	// Exclusive loads/stores.
	if w&0xBFFFFC00 == 0x885F7C00 {
		return Inst{Op: LDXR, Size: exSize(w), Rd: gp(rd, false), Rn: gp(rn, true)}, nil
	}
	if w&0xBFFFFC00 == 0x885FFC00 {
		return Inst{Op: LDAXR, Size: exSize(w), Rd: gp(rd, false), Rn: gp(rn, true)}, nil
	}
	if w&0xBFE0FC00 == 0x88007C00 {
		return Inst{Op: STXR, Size: exSize(w), Rd: gp(rd, false), Rn: gp(rn, true), Ra: gp(rm, false)}, nil
	}
	if w&0xBFE0FC00 == 0x8800FC00 {
		return Inst{Op: STLXR, Size: exSize(w), Rd: gp(rd, false), Rn: gp(rn, true), Ra: gp(rm, false)}, nil
	}

	// Acquire/release accesses (all four widths share the mask; size is the
	// top two bits).
	if w&0x3FFFFC00 == 0x08DFFC00 {
		return Inst{Op: LDAR, Size: 1 << (w >> 30), Rd: gp(rd, false), Rn: gp(rn, true)}, nil
	}
	if w&0x3FFFFC00 == 0x089FFC00 {
		return Inst{Op: STLR, Size: 1 << (w >> 30), Rd: gp(rd, false), Rn: gp(rn, true)}, nil
	}

	// Loads/stores.
	if w&0x3B000000 == 0x39000000 {
		// Unsigned scaled offset.
		sizeBits := w >> 30
		isFP := w&(1<<26) != 0
		opc := (w >> 22) & 3
		imm := int64((w>>10)&0xFFF) << sizeBits
		accSize := 1 << sizeBits
		rt := rd
		var dst Reg
		if isFP {
			dst = fp(rt)
		} else {
			dst = gp(rt, false)
		}
		switch opc {
		case 0:
			return Inst{Op: STR, Size: accSize, Rd: dst, Rn: gp(rn, true), Imm: imm}, nil
		case 1:
			return Inst{Op: LDR, Size: accSize, Rd: dst, Rn: gp(rn, true), Imm: imm}, nil
		case 2: // sign-extending load to 64-bit
			var op Op
			switch sizeBits {
			case 0:
				op = LDRSB
			case 1:
				op = LDRSH
			case 2:
				op = LDRSW
			default:
				return Inst{}, fmt.Errorf("bad signed load size")
			}
			return Inst{Op: op, Size: accSize, Rd: gp(rt, false), Rn: gp(rn, true), Imm: imm}, nil
		}
		return Inst{}, fmt.Errorf("unsupported load/store opc %d", opc)
	}
	if w&0x3B200C00 == 0x38200800 {
		// Register offset.
		sizeBits := w >> 30
		isFP := w&(1<<26) != 0
		opc := (w >> 22) & 3
		accSize := 1 << sizeBits
		var dst Reg
		if isFP {
			dst = fp(rd)
		} else {
			dst = gp(rd, false)
		}
		s := int64((w >> 12) & 1)
		op := STRR
		if opc == 1 {
			op = LDRR
		}
		return Inst{Op: op, Size: accSize, Rd: dst, Rn: gp(rn, true), Rm: gp(rm, false), Imm: s}, nil
	}
	if w&0x3B200C00 == 0x38000000 {
		// Unscaled 9-bit offset.
		sizeBits := w >> 30
		isFP := w&(1<<26) != 0
		opc := (w >> 22) & 3
		accSize := 1 << sizeBits
		imm := signExtend((w>>12)&0x1FF, 9)
		var dst Reg
		if isFP {
			dst = fp(rd)
		} else {
			dst = gp(rd, false)
		}
		op := STUR
		if opc == 1 {
			op = LDUR
		}
		return Inst{Op: op, Size: accSize, Rd: dst, Rn: gp(rn, true), Imm: imm}, nil
	}

	// Floating point.
	ftype := (w >> 22) & 3
	fsize := 8
	if ftype == 0 {
		fsize = 4
	}
	noft := w &^ (3 << 22)
	if noft&0xFF200C00 == 0x1E200800 {
		opc := (w >> 12) & 0xF
		ops := map[uint32]Op{0x0: FMUL, 0x1: FDIV, 0x2: FADD, 0x3: FSUB}
		if op, ok := ops[opc]; ok {
			return Inst{Op: op, Size: fsize, Rd: fp(rd), Rn: fp(rn), Rm: fp(rm)}, nil
		}
		return Inst{}, fmt.Errorf("unsupported FP opcode %#x", opc)
	}
	switch noft & 0xFFFFFC00 {
	case 0x1E204000:
		return Inst{Op: FMOV, Size: fsize, Rd: fp(rd), Rn: fp(rn)}, nil
	case 0x1E21C000:
		return Inst{Op: FSQRT, Size: fsize, Rd: fp(rd), Rn: fp(rn)}, nil
	case 0x9E220000:
		return Inst{Op: SCVTF, Size: fsize, Rd: fp(rd), Rn: gp(rn, false)}, nil
	case 0x9E380000:
		return Inst{Op: FCVTZS, Size: fsize, Rd: gp(rd, false), Rn: fp(rn)}, nil
	}
	if noft&0xFFE0FC1F == 0x1E202000 {
		return Inst{Op: FCMP, Size: fsize, Rn: fp(rn), Rm: fp(rm)}, nil
	}
	switch w & 0xFFFFFC00 {
	case 0x9E660000:
		return Inst{Op: FMOVTOG, Size: 8, Rd: gp(rd, false), Rn: fp(rn)}, nil
	case 0x1E260000:
		return Inst{Op: FMOVTOG, Size: 4, Rd: gp(rd, false), Rn: fp(rn)}, nil
	case 0x9E670000:
		return Inst{Op: FMOVTOF, Size: 8, Rd: fp(rd), Rn: gp(rn, false)}, nil
	case 0x1E270000:
		return Inst{Op: FMOVTOF, Size: 4, Rd: fp(rd), Rn: gp(rn, false)}, nil
	case 0x1E22C000:
		return Inst{Op: FCVTDS, Size: 8, Rd: fp(rd), Rn: fp(rn)}, nil
	case 0x1E624000:
		return Inst{Op: FCVTSD, Size: 4, Rd: fp(rd), Rn: fp(rn)}, nil
	}

	return Inst{}, fmt.Errorf("unsupported instruction word")
}

func exSize(w uint32) int {
	if w>>30 == 3 {
		return 8
	}
	return 4
}

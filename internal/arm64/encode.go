package arm64

import "fmt"

// Encode produces the 32-bit machine encoding of in. Branch immediates are
// byte offsets relative to the instruction's own address.
func Encode(in Inst) (uint32, error) {
	sf := uint32(1)
	if in.Size == 4 {
		sf = 0
	}
	rd := func() uint32 { return in.Rd.Enc() }
	rn := func() uint32 { return in.Rn.Enc() }
	rm := func() uint32 { return in.Rm.Enc() }

	checkBr := func(bits int) (uint32, error) {
		if in.Imm%4 != 0 {
			return 0, fmt.Errorf("arm64: misaligned branch offset %d", in.Imm)
		}
		off := in.Imm / 4
		lim := int64(1) << (bits - 1)
		if off < -lim || off >= lim {
			return 0, fmt.Errorf("arm64: branch offset %d out of range", in.Imm)
		}
		return uint32(off) & (1<<bits - 1), nil
	}

	switch in.Op {
	case NOP:
		return 0xD503201F, nil
	case RET:
		return 0xD65F0000 | X30.Enc()<<5, nil
	case BR:
		return 0xD61F0000 | rn()<<5, nil
	case BLR:
		return 0xD63F0000 | rn()<<5, nil

	case ADD, SUB, SUBS:
		base := map[Op]uint32{ADD: 0x0B000000, SUB: 0x4B000000, SUBS: 0x6B000000}[in.Op]
		return base | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil

	case ADDI, SUBI, SUBSI:
		if in.Imm < 0 || in.Imm > 4095 {
			return 0, fmt.Errorf("arm64: %s immediate %d out of range", in.Op, in.Imm)
		}
		base := map[Op]uint32{ADDI: 0x11000000, SUBI: 0x51000000, SUBSI: 0x71000000}[in.Op]
		return base | sf<<31 | uint32(in.Imm)<<10 | rn()<<5 | rd(), nil

	case AND, ORR, EOR:
		base := map[Op]uint32{AND: 0x0A000000, ORR: 0x2A000000, EOR: 0x4A000000}[in.Op]
		return base | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil

	case MADD, MSUB:
		base := uint32(0x1B000000)
		if in.Op == MSUB {
			base |= 0x8000
		}
		return base | sf<<31 | rm()<<16 | in.Ra.Enc()<<10 | rn()<<5 | rd(), nil

	case SDIV:
		return 0x1AC00C00 | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil
	case UDIV:
		return 0x1AC00800 | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil
	case LSLV:
		return 0x1AC02000 | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil
	case LSRV:
		return 0x1AC02400 | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil
	case ASRV:
		return 0x1AC02800 | sf<<31 | rm()<<16 | rn()<<5 | rd(), nil

	case LSLI, LSRI, ASRI, SXTB, SXTH, SXTW, UXTB, UXTH:
		return encodeBitfield(in, sf)

	case MOVZ, MOVN, MOVK:
		base := map[Op]uint32{MOVZ: 0x52800000, MOVN: 0x12800000, MOVK: 0x72800000}[in.Op]
		if in.Imm < 0 || in.Imm > 0xFFFF {
			return 0, fmt.Errorf("arm64: %s imm16 %d out of range", in.Op, in.Imm)
		}
		if in.Shift < 0 || in.Shift > 3 || (sf == 0 && in.Shift > 1) {
			return 0, fmt.Errorf("arm64: %s shift %d out of range", in.Op, in.Shift)
		}
		return base | sf<<31 | uint32(in.Shift)<<21 | uint32(in.Imm)<<5 | rd(), nil

	case CSEL:
		return 0x1A800000 | sf<<31 | rm()<<16 | uint32(in.Cond)<<12 | rn()<<5 | rd(), nil
	case CSINC:
		return 0x1A800400 | sf<<31 | rm()<<16 | uint32(in.Cond)<<12 | rn()<<5 | rd(), nil

	case LDR, STR:
		return encodeLoadStore(in)

	case LDRR, STRR:
		return encodeLoadStoreReg(in)

	case LDUR, STUR:
		if in.Imm < -256 || in.Imm > 255 {
			return 0, fmt.Errorf("arm64: unscaled offset %d out of range", in.Imm)
		}
		var base uint32
		fp := in.Rd.IsFP()
		sizeBits, err := lsSizeBits(in.Size, fp)
		if err != nil {
			return 0, err
		}
		if in.Op == LDUR {
			base = 0x38400000
		} else {
			base = 0x38000000
		}
		if fp {
			base |= 1 << 26
		}
		return base | sizeBits<<30 | (uint32(in.Imm)&0x1FF)<<12 | rn()<<5 | rd(), nil

	case LDRSB, LDRSH, LDRSW:
		// Sign-extending loads to 64 bits, unsigned scaled offset.
		var base uint32
		var scale int64
		switch in.Op {
		case LDRSB:
			base, scale = 0x39800000, 1
		case LDRSH:
			base, scale = 0x79800000, 2
		case LDRSW:
			base, scale = 0xB9800000, 4
		}
		if in.Imm < 0 || in.Imm%scale != 0 || in.Imm/scale > 4095 {
			return 0, fmt.Errorf("arm64: %s offset %d invalid", in.Op, in.Imm)
		}
		return base | uint32(in.Imm/scale)<<10 | rn()<<5 | rd(), nil

	case LDXR:
		base := uint32(0x885F7C00)
		if in.Size == 8 {
			base = 0xC85F7C00
		}
		return base | rn()<<5 | rd(), nil
	case LDAXR:
		base := uint32(0x885FFC00)
		if in.Size == 8 {
			base = 0xC85FFC00
		}
		return base | rn()<<5 | rd(), nil
	case STXR:
		// Ra is the status register.
		base := uint32(0x88007C00)
		if in.Size == 8 {
			base = 0xC8007C00
		}
		return base | in.Ra.Enc()<<16 | rn()<<5 | rd(), nil
	case STLXR:
		base := uint32(0x8800FC00)
		if in.Size == 8 {
			base = 0xC800FC00
		}
		return base | in.Ra.Enc()<<16 | rn()<<5 | rd(), nil

	case LDAR, STLR:
		// LDAR{,B,H}/STLR{,B,H}: size in bits 31:30, Rs=Rt2=ones like the
		// exclusives but L=1/o0=1 without setting a monitor.
		sizeBits, err := lsSizeBits(in.Size, false)
		if err != nil {
			return 0, err
		}
		base := uint32(0x08DFFC00) // LDAR
		if in.Op == STLR {
			base = 0x089FFC00
		}
		return base | sizeBits<<30 | rn()<<5 | rd(), nil

	case DMB:
		crm := map[Barrier]uint32{BarrierISH: 0xB, BarrierISHLD: 0x9, BarrierISHST: 0xA}[in.Barrier]
		return 0xD50330BF | crm<<8, nil

	case B, BL:
		off, err := checkBr(26)
		if err != nil {
			return 0, err
		}
		base := uint32(0x14000000)
		if in.Op == BL {
			base = 0x94000000
		}
		return base | off, nil

	case BCOND:
		off, err := checkBr(19)
		if err != nil {
			return 0, err
		}
		return 0x54000000 | off<<5 | uint32(in.Cond), nil

	case CBZ, CBNZ:
		off, err := checkBr(19)
		if err != nil {
			return 0, err
		}
		base := uint32(0x34000000)
		if in.Op == CBNZ {
			base = 0x35000000
		}
		return base | sf<<31 | off<<5 | rd(), nil

	case FADD, FSUB, FMUL, FDIV:
		ftype := uint32(1) // double
		if in.Size == 4 {
			ftype = 0
		}
		opc := map[Op]uint32{FMUL: 0x0800, FDIV: 0x1800, FADD: 0x2800, FSUB: 0x3800}[in.Op]
		return 0x1E200000 | ftype<<22 | rm()<<16 | opc | rn()<<5 | rd(), nil

	case FSQRT:
		ftype := uint32(1)
		if in.Size == 4 {
			ftype = 0
		}
		return 0x1E21C000 | ftype<<22 | rn()<<5 | rd(), nil

	case FCMP:
		ftype := uint32(1)
		if in.Size == 4 {
			ftype = 0
		}
		return 0x1E202000 | ftype<<22 | rm()<<16 | rn()<<5, nil

	case FMOV:
		ftype := uint32(1)
		if in.Size == 4 {
			ftype = 0
		}
		return 0x1E204000 | ftype<<22 | rn()<<5 | rd(), nil

	case FMOVTOG: // Xd/Wd <- Dn/Sn
		if in.Size == 4 {
			return 0x1E260000 | rn()<<5 | rd(), nil
		}
		return 0x9E660000 | rn()<<5 | rd(), nil
	case FMOVTOF: // Dd/Sd <- Xn/Wn
		if in.Size == 4 {
			return 0x1E270000 | rn()<<5 | rd(), nil
		}
		return 0x9E670000 | rn()<<5 | rd(), nil

	case SCVTF: // Dd <- Xn (Size is the FP width; integer source is 64-bit)
		ftype := uint32(1)
		if in.Size == 4 {
			ftype = 0
		}
		return 0x9E220000 | ftype<<22 | rn()<<5 | rd(), nil
	case FCVTZS: // Xd <- Dn
		ftype := uint32(1)
		if in.Size == 4 {
			ftype = 0
		}
		return 0x9E380000 | ftype<<22 | rn()<<5 | rd(), nil
	case FCVTDS: // Dd <- Sn
		return 0x1E22C000 | rn()<<5 | rd(), nil
	case FCVTSD: // Sd <- Dn
		return 0x1E624000 | rn()<<5 | rd(), nil
	}
	return 0, fmt.Errorf("arm64: cannot encode %s", in.Op)
}

func encodeBitfield(in Inst, sf uint32) (uint32, error) {
	ubfm := uint32(0x53000000)
	sbfm := uint32(0x13000000)
	width := int64(64)
	if sf == 0 {
		width = 32
	}
	n := sf // N matches sf for the aliases we use
	mk := func(base uint32, immr, imms int64) (uint32, error) {
		if immr < 0 || immr >= width || imms < 0 || imms >= width {
			return 0, fmt.Errorf("arm64: bitfield out of range (immr=%d imms=%d)", immr, imms)
		}
		return base | sf<<31 | n<<22 | uint32(immr)<<16 | uint32(imms)<<10 | in.Rn.Enc()<<5 | in.Rd.Enc(), nil
	}
	sh := in.Imm
	switch in.Op {
	case LSLI:
		if sh <= 0 || sh >= width {
			return 0, fmt.Errorf("arm64: lsl #%d out of range", sh)
		}
		return mk(ubfm, (width-sh)%width, width-1-sh)
	case LSRI:
		return mk(ubfm, sh, width-1)
	case ASRI:
		return mk(sbfm, sh, width-1)
	case SXTB:
		return mk(sbfm, 0, 7)
	case SXTH:
		return mk(sbfm, 0, 15)
	case SXTW:
		return mk(sbfm, 0, 31)
	case UXTB:
		return 0x53000000 | uint32(7)<<10 | in.Rn.Enc()<<5 | in.Rd.Enc(), nil // 32-bit UBFM 0,7
	case UXTH:
		return 0x53000000 | uint32(15)<<10 | in.Rn.Enc()<<5 | in.Rd.Enc(), nil
	}
	return 0, fmt.Errorf("arm64: bad bitfield op %s", in.Op)
}

// lsSizeBits maps an access width to the size field of load/store
// encodings.
func lsSizeBits(size int, fp bool) (uint32, error) {
	switch size {
	case 1:
		return 0, nil
	case 2:
		return 1, nil
	case 4:
		return 2, nil
	case 8, 0:
		return 3, nil
	}
	return 0, fmt.Errorf("arm64: bad access size %d", size)
}

func encodeLoadStore(in Inst) (uint32, error) {
	fp := in.Rd.IsFP()
	sizeBits, err := lsSizeBits(in.Size, fp)
	if err != nil {
		return 0, err
	}
	scale := int64(1) << sizeBits
	if in.Imm < 0 || in.Imm%scale != 0 || in.Imm/scale > 4095 {
		return 0, fmt.Errorf("arm64: %s scaled offset %d invalid for size %d", in.Op, in.Imm, in.Size)
	}
	base := uint32(0x39000000) // STR unsigned offset
	if in.Op == LDR {
		base = 0x39400000
	}
	if fp {
		base |= 1 << 26
	}
	return base | sizeBits<<30 | uint32(in.Imm/scale)<<10 | in.Rn.Enc()<<5 | in.Rd.Enc(), nil
}

func encodeLoadStoreReg(in Inst) (uint32, error) {
	fp := in.Rd.IsFP()
	sizeBits, err := lsSizeBits(in.Size, fp)
	if err != nil {
		return 0, err
	}
	base := uint32(0x38200800) // STR register offset, option=LSL(011) set below
	if in.Op == LDRR {
		base = 0x38600800
	}
	if fp {
		base |= 1 << 26
	}
	// option = 011 (LSL), S from Imm (0 = no scale, 1 = scale by size).
	s := uint32(0)
	if in.Imm == 1 {
		s = 1
	}
	return base | sizeBits<<30 | in.Rm.Enc()<<16 | 3<<13 | s<<12 | in.Rn.Enc()<<5 | in.Rd.Enc(), nil
}

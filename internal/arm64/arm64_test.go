package arm64

import (
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, in Inst) {
	t.Helper()
	w, err := Encode(in)
	if err != nil {
		t.Fatalf("encode %+v: %v", in, err)
	}
	got, err := Decode(w, 0)
	if err != nil {
		t.Fatalf("decode %#08x (%+v): %v", w, in, err)
	}
	got.Addr, got.Len = 0, 0
	if got.Size == 0 {
		got.Size = 8
	}
	norm := in
	if norm.Size == 0 {
		norm.Size = 8
	}
	if !reflect.DeepEqual(norm, got) {
		t.Fatalf("round trip mismatch:\n  in:  %+v (%s)\n  out: %+v (%s)\n  word: %#08x",
			norm, norm.String(), got, got.String(), w)
	}
}

func TestRoundTripInteger(t *testing.T) {
	cases := []Inst{
		{Op: ADD, Size: 8, Rd: X0, Rn: X1, Rm: X2},
		{Op: ADD, Size: 4, Rd: X10, Rn: X11, Rm: X12},
		{Op: SUB, Size: 8, Rd: X3, Rn: X4, Rm: X5},
		{Op: SUBS, Size: 8, Rd: XZR, Rn: X1, Rm: X2}, // cmp x1, x2
		{Op: ADDI, Size: 8, Rd: SP, Rn: SP, Imm: 32},
		{Op: SUBI, Size: 8, Rd: SP, Rn: SP, Imm: 48},
		{Op: SUBSI, Size: 8, Rd: XZR, Rn: X0, Imm: 100},
		{Op: AND, Size: 8, Rd: X0, Rn: X0, Rm: X9},
		{Op: ORR, Size: 8, Rd: X7, Rn: XZR, Rm: X3}, // mov x7, x3
		{Op: EOR, Size: 4, Rd: X1, Rn: X1, Rm: X1},
		{Op: MADD, Size: 8, Rd: X0, Rn: X1, Rm: X2, Ra: XZR}, // mul
		{Op: MSUB, Size: 8, Rd: X0, Rn: X1, Rm: X2, Ra: X3},
		{Op: SDIV, Size: 8, Rd: X0, Rn: X1, Rm: X2},
		{Op: UDIV, Size: 4, Rd: X0, Rn: X1, Rm: X2},
		{Op: LSLV, Size: 8, Rd: X0, Rn: X1, Rm: X2},
		{Op: LSRV, Size: 8, Rd: X0, Rn: X1, Rm: X2},
		{Op: ASRV, Size: 8, Rd: X0, Rn: X1, Rm: X2},
		{Op: LSLI, Size: 8, Rd: X0, Rn: X1, Imm: 3},
		{Op: LSLI, Size: 8, Rd: X0, Rn: X1, Imm: 63},
		{Op: LSRI, Size: 8, Rd: X0, Rn: X1, Imm: 7},
		{Op: ASRI, Size: 8, Rd: X0, Rn: X1, Imm: 31},
		{Op: LSLI, Size: 4, Rd: X0, Rn: X1, Imm: 5},
		{Op: SXTB, Size: 8, Rd: X0, Rn: X1},
		{Op: SXTH, Size: 8, Rd: X2, Rn: X3},
		{Op: SXTW, Size: 8, Rd: X4, Rn: X5},
		{Op: UXTB, Size: 4, Rd: X6, Rn: X7},
		{Op: UXTH, Size: 4, Rd: X8, Rn: X9},
		{Op: MOVZ, Size: 8, Rd: X0, Imm: 0xBEEF, Shift: 0},
		{Op: MOVK, Size: 8, Rd: X0, Imm: 0xDEAD, Shift: 2},
		{Op: MOVN, Size: 8, Rd: X1, Imm: 0, Shift: 0},
		{Op: CSEL, Size: 8, Cond: NE, Rd: X0, Rn: X1, Rm: X2},
		{Op: CSINC, Size: 8, Cond: EQ, Rd: X0, Rn: XZR, Rm: XZR},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestRoundTripLoadsStores(t *testing.T) {
	cases := []Inst{
		{Op: LDR, Size: 8, Rd: X0, Rn: SP, Imm: 16},
		{Op: STR, Size: 8, Rd: X1, Rn: SP, Imm: 24},
		{Op: LDR, Size: 4, Rd: X2, Rn: X3, Imm: 8},
		{Op: STR, Size: 4, Rd: X4, Rn: X5, Imm: 0},
		{Op: LDR, Size: 1, Rd: X6, Rn: X7, Imm: 3},
		{Op: STR, Size: 1, Rd: X8, Rn: X9, Imm: 1},
		{Op: LDR, Size: 2, Rd: X10, Rn: X11, Imm: 6},
		{Op: STR, Size: 2, Rd: X12, Rn: X13, Imm: 2},
		{Op: LDR, Size: 8, Rd: D0, Rn: X0, Imm: 8},
		{Op: STR, Size: 8, Rd: D1, Rn: SP, Imm: 32},
		{Op: LDR, Size: 4, Rd: D2, Rn: X1, Imm: 4},
		{Op: LDRR, Size: 8, Rd: X0, Rn: X1, Rm: X2, Imm: 0},
		{Op: LDRR, Size: 8, Rd: X0, Rn: X1, Rm: X2, Imm: 1},
		{Op: STRR, Size: 4, Rd: X3, Rn: X4, Rm: X5, Imm: 1},
		{Op: STRR, Size: 8, Rd: D3, Rn: X4, Rm: X5, Imm: 0},
		{Op: LDUR, Size: 8, Rd: X0, Rn: X1, Imm: -8},
		{Op: STUR, Size: 4, Rd: X2, Rn: SP, Imm: -4},
		{Op: LDRSB, Size: 1, Rd: X0, Rn: X1, Imm: 2},
		{Op: LDRSH, Size: 2, Rd: X2, Rn: X3, Imm: 4},
		{Op: LDRSW, Size: 4, Rd: X4, Rn: X5, Imm: 8},
		{Op: LDXR, Size: 8, Rd: X0, Rn: X1},
		{Op: LDXR, Size: 4, Rd: X2, Rn: X3},
		{Op: LDAXR, Size: 8, Rd: X0, Rn: X1},
		{Op: STXR, Size: 8, Rd: X0, Rn: X1, Ra: X9},
		{Op: STLXR, Size: 4, Rd: X2, Rn: X3, Ra: X10},
		{Op: LDAR, Size: 8, Rd: X0, Rn: X1},
		{Op: LDAR, Size: 4, Rd: X2, Rn: X3},
		{Op: LDAR, Size: 2, Rd: X4, Rn: X5},
		{Op: LDAR, Size: 1, Rd: X6, Rn: X7},
		{Op: STLR, Size: 8, Rd: X8, Rn: X9},
		{Op: STLR, Size: 4, Rd: X10, Rn: X11},
		{Op: STLR, Size: 2, Rd: X12, Rn: X13},
		{Op: STLR, Size: 1, Rd: X14, Rn: X15},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

// TestAcquireReleasePrinting pins the mnemonic/width conventions: sub-word
// acquire/release accesses use the B/H suffix with a W register.
func TestAcquireReleasePrinting(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: LDAR, Size: 8, Rd: X0, Rn: X1}, "ldar x0, [x1]"},
		{Inst{Op: LDAR, Size: 4, Rd: X0, Rn: X1}, "ldar w0, [x1]"},
		{Inst{Op: LDAR, Size: 2, Rd: X0, Rn: X1}, "ldarh w0, [x1]"},
		{Inst{Op: LDAR, Size: 1, Rd: X0, Rn: X1}, "ldarb w0, [x1]"},
		{Inst{Op: STLR, Size: 8, Rd: X2, Rn: SP}, "stlr x2, [sp]"},
		{Inst{Op: STLR, Size: 1, Rd: X2, Rn: X3}, "stlrb w2, [x3]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("print %+v = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRoundTripBarriersAndBranches(t *testing.T) {
	for _, bar := range []Barrier{BarrierISH, BarrierISHLD, BarrierISHST} {
		roundTrip(t, Inst{Op: DMB, Barrier: bar, Size: 8})
	}
	// Branch targets decode to absolute addresses.
	w, err := Encode(Inst{Op: B, Imm: 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(w, 0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != B || got.Imm != 0x1040 {
		t.Fatalf("b target %#x, want 0x1040", got.Imm)
	}
	w, _ = Encode(Inst{Op: BCOND, Cond: LT, Imm: -32})
	got, err = Decode(w, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cond != LT || got.Imm != 0x1FE0 {
		t.Fatalf("b.lt target %#x cond %v", got.Imm, got.Cond)
	}
	w, _ = Encode(Inst{Op: CBZ, Size: 8, Rd: X3, Imm: 16})
	got, err = Decode(w, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != CBZ || got.Rd != X3 || got.Imm != 16 {
		t.Fatalf("cbz decode %+v", got)
	}
	roundTrip(t, Inst{Op: RET, Size: 8, Rn: X30})
	roundTrip(t, Inst{Op: BR, Size: 8, Rn: X5})
	roundTrip(t, Inst{Op: BLR, Size: 8, Rn: X6})
}

func TestRoundTripFP(t *testing.T) {
	cases := []Inst{
		{Op: FADD, Size: 8, Rd: D0, Rn: D1, Rm: D2},
		{Op: FSUB, Size: 8, Rd: D3, Rn: D4, Rm: D5},
		{Op: FMUL, Size: 4, Rd: D0, Rn: D1, Rm: D2},
		{Op: FDIV, Size: 8, Rd: D6, Rn: D7, Rm: D8},
		{Op: FSQRT, Size: 8, Rd: D0, Rn: D1},
		{Op: FCMP, Size: 8, Rn: D0, Rm: D1},
		{Op: FMOV, Size: 8, Rd: D0, Rn: D1},
		{Op: FMOVTOG, Size: 8, Rd: X0, Rn: D0},
		{Op: FMOVTOF, Size: 8, Rd: D0, Rn: X0},
		{Op: FMOVTOG, Size: 4, Rd: X1, Rn: D2},
		{Op: SCVTF, Size: 8, Rd: D0, Rn: X1},
		{Op: FCVTZS, Size: 8, Rd: X0, Rn: D1},
		{Op: FCVTDS, Size: 8, Rd: D0, Rn: D1},
		{Op: FCVTSD, Size: 4, Rd: D0, Rn: D1},
	}
	for _, c := range cases {
		roundTrip(t, c)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	if _, err := Encode(Inst{Op: ADDI, Size: 8, Rd: X0, Rn: X0, Imm: 5000}); err == nil {
		t.Error("addi out-of-range imm accepted")
	}
	if _, err := Encode(Inst{Op: LDR, Size: 8, Rd: X0, Rn: X1, Imm: 7}); err == nil {
		t.Error("misaligned ldr offset accepted")
	}
	if _, err := Encode(Inst{Op: B, Imm: 3}); err == nil {
		t.Error("misaligned branch accepted")
	}
	if _, err := Encode(Inst{Op: MOVZ, Size: 8, Rd: X0, Imm: 1 << 17}); err == nil {
		t.Error("movz imm out of range accepted")
	}
}

func TestPrinterAliases(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: SUBS, Size: 8, Rd: XZR, Rn: X1, Rm: X2}, "cmp x1, x2"},
		{Inst{Op: ORR, Size: 8, Rd: X7, Rn: XZR, Rm: X3}, "mov x7, x3"},
		{Inst{Op: MADD, Size: 8, Rd: X0, Rn: X1, Rm: X2, Ra: XZR}, "mul x0, x1, x2"},
		{Inst{Op: CSINC, Size: 8, Cond: NE, Rd: X0, Rn: XZR, Rm: XZR}, "cset x0, eq"},
		{Inst{Op: DMB, Barrier: BarrierISHST}, "dmb ishst"},
		{Inst{Op: LDR, Size: 4, Rd: X2, Rn: X3, Imm: 8}, "ldr w2, [x3, #8]"},
		{Inst{Op: STXR, Size: 8, Rd: X1, Rn: X2, Ra: X9}, "stxr w9, x1, [x2]"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDecodeAll(t *testing.T) {
	prog := []Inst{
		{Op: MOVZ, Size: 8, Rd: X0, Imm: 42},
		{Op: ADDI, Size: 8, Rd: X0, Rn: X0, Imm: 1},
		{Op: RET, Size: 8, Rn: X30},
	}
	var code []byte
	for _, in := range prog {
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		code = append(code, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	out, err := DecodeAll(code, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[1].Addr != 0x4004 {
		t.Fatalf("decode all: %+v", out)
	}
}

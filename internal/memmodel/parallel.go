package memmodel

import (
	"runtime"
	"sync"
	"sync/atomic"

	"lasagne/internal/par"
)

// DefaultParallelism is the worker count used by the parallel enumeration
// driver and the bounded checkers. Commands override it via their -parallel
// flag; 1 disables concurrency entirely.
var DefaultParallelism = runtime.GOMAXPROCS(0)

// parallelFor and firstFailure are package-local shorthands for the shared
// worker-pool primitives.
func parallelFor(n, workers int, fn func(i int)) { par.For(n, workers, fn) }

func firstFailure(n, workers int, fn func(i int) error) error {
	return par.FirstErr(n, workers, fn)
}

// enumTask fixes one subtree root of the enumeration: a choice of coherence
// order per location plus, when the program has reads, the rf source of the
// first read.
type enumTask struct {
	coSel []int // index into coChoices per location
	rf0   int   // index into rfChoices[0]; -1 when the program has no reads
}

// VisitExecutionsParallel streams the candidate executions of p like
// VisitExecutions, but splits the enumeration across up to workers
// goroutines: each task fixes the coherence orders and the first read's rf
// choice, and a worker enumerates the remaining rf subtree. visit may be
// called concurrently from multiple goroutines, each with its own scratch
// Execution.
func VisitExecutionsParallel(p *Program, workers int, visit func(*Execution)) {
	VisitExecutionsParallelBudget(p, workers, Budget{}, visit) // unbounded: cannot fail
}

// VisitExecutionsParallelBudget is VisitExecutionsParallel under a Budget.
// All workers draw from one shared limiter, so MaxVisits caps the total
// candidates visited across goroutines; once any worker trips the budget
// the others stop at their next candidate or task boundary.
func VisitExecutionsParallelBudget(p *Program, workers int, b Budget, visit func(*Execution)) error {
	if workers <= 1 {
		return VisitExecutionsBudget(p, b, visit)
	}
	lim := newLimiter(b)
	if lim.expired() {
		return lim.err()
	}
	return newEnumSpace(p).visitParallel(workers, lim, false, visit)
}

// visitParallel splits the space's enumeration across up to workers
// goroutines drawing from one shared limiter. It is the engine behind
// VisitExecutionsParallelBudget, factored out so behavior folds can reuse
// the already-built space (and its hoisted statics). dense selects
// map-free scratch executions (see newWalker).
func (s *enumSpace) visitParallel(workers int, lim *limiter, dense bool, visit func(*Execution)) error {
	// Materializing tasks is cheap: the co cross product is small (few
	// writes per location) and only the first read's choices multiply it.
	var tasks []enumTask
	sel := make([]int, len(s.locs))
	var gen func(ci int)
	gen = func(ci int) {
		if ci == len(s.locs) {
			if len(s.reads) == 0 {
				tasks = append(tasks, enumTask{coSel: append([]int(nil), sel...), rf0: -1})
				return
			}
			for k := range s.rfChoices[0] {
				tasks = append(tasks, enumTask{coSel: append([]int(nil), sel...), rf0: k})
			}
			return
		}
		for k := range s.coChoices[ci] {
			sel[ci] = k
			gen(ci + 1)
		}
	}
	gen(0)

	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		w := s.newWalker(dense) // sole walker: a dense one could alias, but
		w.lim = lim             // this fallback is cold (fewer tasks than workers)
		w.walkCo(0, visit)
		return lim.err()
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			walk := s.newWalker(dense)
			walk.lim = lim
			for {
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				t := tasks[ti]
				for ci, k := range t.coSel {
					walk.setCo(ci, s.coChoices[ci][k])
				}
				if t.rf0 < 0 {
					if !walk.walkReads(0, visit) {
						return
					}
					continue
				}
				r0 := s.reads[0]
				src := s.rfChoices[0][t.rf0]
				if walk.x.RF != nil {
					walk.x.RF[r0.ID] = src
				}
				walk.x.rfOf[r0.ID] = int32(src)
				walk.x.Events[r0.ID].Val = walk.x.Events[src].Val
				if !walk.walkReads(1, visit) {
					return
				}
			}
		}()
	}
	wg.Wait()
	return lim.err()
}

// BehaviorsOfParallel computes BehaviorsOf using the parallel enumeration
// driver: each worker filters and folds behaviors into a private map, and
// the maps are merged at the end. The result is identical to BehaviorsOf.
func BehaviorsOfParallel(p *Program, m Model, withReads bool, workers int) map[string]Behavior {
	out, _ := BehaviorsOfParallelBudget(p, m, withReads, workers, Budget{}) // unbounded: cannot fail
	return out
}

// BehaviorsOfParallelBudget is BehaviorsOfParallel under a Budget. On
// cutoff the returned map holds the behaviors folded before the budget
// tripped (a sound underapproximation) alongside the budget error.
func BehaviorsOfParallelBudget(p *Program, m Model, withReads bool, workers int, b Budget) (map[string]Behavior, error) {
	acc, err := foldBehaviorsBudget(p, m, withReads, workers, b)
	return acc.result(), err
}

// foldBehaviorsBudget is the engine behind every behavior-set entry point:
// it enumerates p's candidate executions (serially, or split across workers)
// and folds the consistent ones into one interned behaviorSet. The inclusion
// checkers consume the set directly — comparing packed keys — and only the
// public map-returning wrappers pay for string materialization.
func foldBehaviorsBudget(p *Program, m Model, withReads bool, workers int, b Budget) (*behaviorSet, error) {
	return foldBehaviorsArena(p, m, withReads, workers, b, nil)
}

// foldBehaviorsArena is foldBehaviorsBudget with the serial path's scratch
// structures drawn from the arena (nil falls back to plain allocation). The
// parallel path ignores the arena — its per-worker shards are built lazily
// and must not share a single-threaded arena.
func foldBehaviorsArena(p *Program, m Model, withReads bool, workers int, b Budget, a *arena) (*behaviorSet, error) {
	lim := newLimiter(b)
	if lim.expired() {
		return newBehaviorSet(nil, withReads), lim.err()
	}
	if workers > 1 {
		a = nil
	}
	s := newEnumSpaceIn(p, a)
	ms := m.static(s.stat, a) // hoisted once, shared read-only by every worker
	acc := a.behaviorSet(s.stat, withReads)
	if workers <= 1 {
		w := s.newAliasWalkerIn(a)
		w.lim = lim
		ev := newEvaluatorIn(s, m, ms, a)
		w.walkCo(0, func(x *Execution) {
			if ev.consistent(x) {
				acc.add(x)
			}
		})
		return acc, lim.err()
	}
	type shard struct {
		ev  *evaluator
		acc *behaviorSet
	}
	var mu sync.Mutex
	shards := map[*Execution]*shard{} // keyed by each worker's scratch Execution
	err := s.visitParallel(workers, lim, true, func(x *Execution) {
		mu.Lock()
		sh := shards[x]
		if sh == nil {
			sh = &shard{ev: newEvaluatorShared(s, m, ms), acc: newBehaviorSet(s.stat, withReads)}
			shards[x] = sh
		}
		mu.Unlock()
		if sh.ev.consistent(x) {
			sh.acc.add(x)
		}
	})
	for _, sh := range shards {
		acc.merge(sh.acc)
	}
	return acc, err
}

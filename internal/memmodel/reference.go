package memmodel

// This file retains the original map/[]bool checking core verbatim as a
// reference implementation. The production engine (bitrel.go, eval.go) packs
// relations into word-wide bitsets and hoists skeleton-invariant relations
// out of the per-execution path; the differential oracle test runs both over
// randomized litmus programs and requires identical behavior sets.

// boolRel is the reference n×n adjacency matrix: one bool per pair.
type boolRel struct {
	n int
	m []bool
}

func newBoolRel(n int) *boolRel { return &boolRel{n: n, m: make([]bool, n*n)} }

func (r *boolRel) set(a, b int)      { r.m[a*r.n+b] = true }
func (r *boolRel) has(a, b int) bool { return r.m[a*r.n+b] }
func (r *boolRel) clear() {
	for i := range r.m {
		r.m[i] = false
	}
}
func (r *boolRel) union(o *boolRel) {
	for i := range r.m {
		r.m[i] = r.m[i] || o.m[i]
	}
}

// transitiveClosure computes r+ in place (scalar Floyd-Warshall).
func (r *boolRel) transitiveClosure() {
	for k := 0; k < r.n; k++ {
		for i := 0; i < r.n; i++ {
			if !r.has(i, k) {
				continue
			}
			for j := 0; j < r.n; j++ {
				if r.has(k, j) {
					r.set(i, j)
				}
			}
		}
	}
}

func (r *boolRel) irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.has(i, i) {
			return false
		}
	}
	return true
}

// rels is the reference relation set: po plus the per-execution rf/co/fr
// matrices and their external subsets, all recomputed per execution.
type rels struct {
	n             int
	events        []*Event
	poR           *boolRel // full po
	rf, co, fr    *boolRel
	rfe, coe, fre *boolRel
	rmw           *boolRel
}

func (x *Execution) relations() *rels { return x.relationsInto(nil) }

// relationsInto computes the relation set, reusing buf's matrices when it
// was built for the same event skeleton (same size and same backing events,
// as during one streamed enumeration). The program-order and rmw relations
// depend only on the skeleton, so a reused buffer keeps them as-is.
func (x *Execution) relationsInto(buf *rels) *rels {
	n := x.n
	var r *rels
	reuse := buf != nil && buf.n == n && len(buf.events) == len(x.Events) &&
		len(x.Events) > 0 && buf.events[0] == x.Events[0]
	if reuse {
		r = buf
		for _, m := range []*boolRel{r.rf, r.co, r.fr, r.rfe, r.coe, r.fre} {
			m.clear()
		}
	} else {
		r = &rels{
			n: n, events: x.Events,
			poR: newBoolRel(n), rf: newBoolRel(n), co: newBoolRel(n), fr: newBoolRel(n),
			rfe: newBoolRel(n), coe: newBoolRel(n), fre: newBoolRel(n), rmw: newBoolRel(n),
		}
	}
	byID := x.Events // events are stored in dense ID order
	if !reuse {
		for _, a := range x.Events {
			for _, b := range x.Events {
				if a.ID != b.ID && x.po(a, b) {
					r.poR.set(a.ID, b.ID)
				}
			}
		}
		for _, e := range x.Events {
			if e.Kind == EvR && e.RMW >= 0 {
				r.rmw.set(e.ID, e.RMW)
			}
		}
	}
	for rID, wID := range x.RF {
		r.rf.set(wID, rID)
		if !x.po(byID[wID], byID[rID]) && !x.po(byID[rID], byID[wID]) {
			r.rfe.set(wID, rID)
		}
	}
	for _, order := range x.CO {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				r.co.set(order[i], order[j])
				a, b := byID[order[i]], byID[order[j]]
				if !x.po(a, b) && !x.po(b, a) {
					r.coe.set(order[i], order[j])
				}
			}
		}
	}
	for _, a := range x.Events {
		if a.Kind != EvR {
			continue
		}
		for _, b := range x.Events {
			if b.Kind == EvW && a.Loc == b.Loc && x.fr(a, b) {
				r.fr.set(a.ID, b.ID)
				if !x.po(a, b) && !x.po(b, a) {
					r.fre.set(a.ID, b.ID)
				}
			}
		}
	}
	return r
}

// refScPerLoc checks SC-per-location: (po|loc ∪ rf ∪ co ∪ fr) is acyclic.
// Both x86 and Arm satisfy it, and LIMM requires it (§6.2).
func refScPerLoc(x *Execution, r *rels) bool {
	rel := newBoolRel(r.n)
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID {
				continue
			}
			if r.poR.has(a.ID, b.ID) && a.Kind != EvF && b.Kind != EvF && a.Loc == b.Loc {
				rel.set(a.ID, b.ID)
			}
		}
	}
	rel.union(r.rf)
	rel.union(r.co)
	rel.union(r.fr)
	rel.transitiveClosure()
	return rel.irreflexive()
}

// refAtomicity checks rmw ∩ (fre;coe) = ∅ (§6.2).
func refAtomicity(x *Execution, r *rels) bool {
	for _, a := range r.events {
		if a.Kind != EvR || a.RMW < 0 {
			continue
		}
		w := a.RMW
		// Exists w' with fre(a, w') and coe(w', w)?
		for _, wp := range r.events {
			if wp.Kind == EvW && r.fre.has(a.ID, wp.ID) && r.coe.has(wp.ID, w) {
				return false
			}
		}
	}
	return true
}

// refX86 is the original (GHB) axiom implementation of Fig. 6.
func refX86(x *Execution, r *rels) bool {
	hb := newBoolRel(r.n)
	isAt := func(e *Event) bool { return e.RMW >= 0 }
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) {
				continue
			}
			// ppo.
			switch {
			case a.Kind == EvW && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvR:
				hb.set(a.ID, b.ID)
			}
			// implid: ordering through fences and atomics.
			aF := a.Kind == EvF && a.Fen == MFENCE
			bF := b.Kind == EvF && b.Fen == MFENCE
			if isAt(b) || bF || isAt(a) || aF {
				hb.set(a.ID, b.ID)
			}
		}
	}
	hb.union(r.rfe)
	hb.union(r.fr)
	hb.union(r.co)
	hb.transitiveClosure()
	return hb.irreflexive()
}

// refArm is the original (external) axiom implementation of Fig. 6.
func refArm(x *Execution, r *rels) bool {
	ob := newBoolRel(r.n)
	ob.union(r.rfe)
	ob.union(r.coe)
	ob.union(r.fre)
	ob.union(r.rmw)
	// Release/acquire half-fence ordering (Appendix A).
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) || a.Tid != b.Tid {
				continue
			}
			if a.Kind == EvR && a.Acq {
				ob.set(a.ID, b.ID)
			}
			if b.Kind == EvW && b.Rel {
				ob.set(a.ID, b.ID)
			}
		}
	}
	// bob.
	for _, f := range r.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range r.events {
			if !r.poR.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range r.events {
				if !r.poR.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case DMBFF:
					if a.Kind != EvF && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBLD:
					if a.Kind == EvR && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBST:
					if a.Kind == EvW && b.Kind == EvW {
						ob.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	ob.transitiveClosure()
	return ob.irreflexive()
}

// refLIMM is the original (GOrd) axiom implementation of Fig. 7.
func refLIMM(x *Execution, r *rels) bool {
	ghb := newBoolRel(r.n)
	ghb.union(r.rfe)
	ghb.union(r.coe)
	ghb.union(r.fre)

	isRsc := func(e *Event) bool { return e.Kind == EvR && e.SC }
	isWsc := func(e *Event) bool { return e.Kind == EvW && e.SC }
	rmwR := func(e *Event) bool { return e.Kind == EvR && e.RMW >= 0 }
	rmwW := func(e *Event) bool { return e.Kind == EvW && e.RMW >= 0 }

	// ord1/ord2: fence-mediated ordering between same-thread accesses.
	for _, f := range r.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range r.events {
			if !r.poR.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range r.events {
				if !r.poR.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case Frm:
					if a.Kind == EvR && (b.Kind == EvR || b.Kind == EvW) {
						ghb.set(a.ID, b.ID)
					}
				case Fww:
					if a.Kind == EvW && b.Kind == EvW {
						ghb.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	// ord3/ord4.
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) {
				continue
			}
			aFsc := a.Kind == EvF && a.Fen == Fsc
			bFsc := b.Kind == EvF && b.Fen == Fsc
			if aFsc || isRsc(a) || rmwW(a) { // ord3
				ghb.set(a.ID, b.ID)
			}
			if bFsc || isWsc(b) || rmwR(b) { // ord4
				ghb.set(a.ID, b.ID)
			}
		}
	}
	ghb.transitiveClosure()
	return ghb.irreflexive()
}

// refSC is the original sequential-consistency predicate.
func refSC(x *Execution, r *rels) bool {
	hb := newBoolRel(r.n)
	hb.union(r.poR)
	hb.union(r.rf)
	hb.union(r.co)
	hb.union(r.fr)
	hb.transitiveClosure()
	return hb.irreflexive()
}

// referenceConsistent is the original per-model axiom over the reference
// relation set. It must agree with evaluator.consistent on every execution —
// the differential oracle test enforces that.
func referenceConsistent(m Model, x *Execution, r *rels) bool {
	switch m.Name {
	case "x86":
		return refX86(x, r)
	case "arm":
		return refArm(x, r)
	case "limm":
		return refLIMM(x, r)
	case "sc":
		return refSC(x, r)
	}
	panic("memmodel: unknown model " + m.Name)
}

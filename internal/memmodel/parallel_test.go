package memmodel

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// bruteForceBehaviors is an independent reference implementation of
// BehaviorsOf: it materializes every rf choice × every coherence permutation
// with no pruning, evaluates consistency with the retained map/[]bool
// reference engine, and filters afterwards. The streaming bitset enumerator
// must produce exactly the same behavior sets.
func bruteForceBehaviors(p *Program, m Model, withReads bool) map[string]Behavior {
	evs := buildEvents(p, p.Locs(), nil)
	var reads []*Event
	writesAt := map[string][]*Event{}
	for _, e := range evs {
		switch e.Kind {
		case EvR:
			reads = append(reads, e)
		case EvW:
			writesAt[e.Loc] = append(writesAt[e.Loc], e)
		}
	}
	locs := p.Locs()

	// All permutations of each location's non-init writes, init first.
	perms := make([][][]int, len(locs))
	for i, loc := range locs {
		var initID int
		var rest []int
		for _, w := range writesAt[loc] {
			if w.Tid == -1 {
				initID = w.ID
			} else {
				rest = append(rest, w.ID)
			}
		}
		var rec func(cur, remaining []int)
		rec = func(cur, remaining []int) {
			if len(remaining) == 0 {
				perms[i] = append(perms[i], append([]int(nil), cur...))
				return
			}
			for k, id := range remaining {
				next := append(append([]int(nil), remaining[:k]...), remaining[k+1:]...)
				rec(append(cur, id), next)
			}
		}
		rec([]int{initID}, rest)
	}

	out := map[string]Behavior{}
	var walkRF func(ri int, x *Execution)
	walkCO := func(x *Execution) {
		var rec func(ci int)
		rec = func(ci int) {
			if ci == len(locs) {
				r := x.relations()
				if refScPerLoc(x, r) && refAtomicity(x, r) && referenceConsistent(m, x, r) {
					b := x.behaviorOf()
					out[b.Key(withReads)] = b
				}
				return
			}
			for k := range perms[ci] {
				x.CO[locs[ci]] = perms[ci][k]
				rec(ci + 1)
			}
		}
		rec(0)
	}
	walkRF = func(ri int, x *Execution) {
		if ri == len(reads) {
			walkCO(x)
			return
		}
		r := reads[ri]
		for _, w := range writesAt[r.Loc] {
			if w.RMW == r.ID {
				continue
			}
			// Expected-value RMWs whose rf cannot match are inconsistent in
			// every model; the reference drops them like the enumerator does.
			if r.HasExp && w.Val != r.Exp {
				continue
			}
			x.RF[r.ID] = w.ID
			x.Events[r.ID].Val = w.Val
			walkRF(ri+1, x)
		}
	}
	x := &Execution{
		Events: evs,
		RF:     map[int]int{},
		CO:     map[string][]int{},
		n:      len(evs),
	}
	walkRF(0, x)
	return out
}

func behaviorKeysEqual(a, b map[string]Behavior) string {
	for k := range a {
		if _, ok := b[k]; !ok {
			return fmt.Sprintf("only in first: %s", k)
		}
	}
	for k := range b {
		if _, ok := a[k]; !ok {
			return fmt.Sprintf("only in second: %s", k)
		}
	}
	return ""
}

// TestStreamingMatchesBruteForce cross-checks the pruned streaming
// enumerator against the unpruned reference on the classic litmus shapes
// under every model.
func TestStreamingMatchesBruteForce(t *testing.T) {
	progs := append(ClassicTests(),
		&Program{Name: "RMWE", Threads: [][]Op{
			{RMWE("X", 0, 1), Ld("Y")},
			{RMWE("X", 0, 2), St("Y", 1)},
		}},
		&Program{Name: "3W", Threads: [][]Op{
			{St("X", 1), St("X", 2)},
			{St("X", 3), Ld("X")},
		}},
	)
	for _, p := range progs {
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			got := BehaviorsOf(p, m, true)
			want := bruteForceBehaviors(p, m, true)
			if diff := behaviorKeysEqual(got, want); diff != "" {
				t.Errorf("%s under %s: %s", p.Name, m.Name, diff)
			}
		}
	}
}

// TestParallelBehaviorsMatchSerial checks that the worker-pool enumeration
// driver computes exactly the serial behavior sets.
func TestParallelBehaviorsMatchSerial(t *testing.T) {
	for _, p := range ClassicTests() {
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			serial := BehaviorsOf(p, m, true)
			for _, workers := range []int{2, 4, 8} {
				parallel := BehaviorsOfParallel(p, m, true, workers)
				if diff := behaviorKeysEqual(serial, parallel); diff != "" {
					t.Errorf("%s under %s with %d workers: %s", p.Name, m.Name, workers, diff)
				}
			}
		}
	}
}

// TestParallelVisitCountsMatch checks the raw candidate streams agree in
// size between the serial walker and the subtree-splitting driver.
func TestParallelVisitCountsMatch(t *testing.T) {
	for _, p := range ClassicTests() {
		serial := 0
		VisitExecutions(p, func(*Execution) { serial++ })
		var count atomic.Int64
		VisitExecutionsParallel(p, 4, func(*Execution) { count.Add(1) })
		if int(count.Load()) != serial {
			t.Errorf("%s: parallel visited %d candidates, serial %d", p.Name, count.Load(), serial)
		}
	}
}

// TestExecutionsClonesAreIndependent checks the compatibility wrapper hands
// out deep copies, not aliases of the enumeration scratch state.
func TestExecutionsClonesAreIndependent(t *testing.T) {
	p := ClassicTests()[0] // SB
	xs := Executions(p)
	if len(xs) < 2 {
		t.Fatalf("expected several executions, got %d", len(xs))
	}
	seen := map[*Event]bool{}
	for _, x := range xs {
		for _, e := range x.Events {
			if seen[e] {
				t.Fatal("two executions share an Event pointer")
			}
			seen[e] = true
		}
	}
	// Mutating one execution must not affect another.
	xs[0].Events[0].Val = 999
	if xs[1].Events[0].Val == 999 {
		t.Fatal("executions share event storage")
	}
}

// TestFirstFailureDeterministic checks the parallel error selection always
// reports the lowest-index failure, matching a serial scan.
func TestFirstFailureDeterministic(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		err := firstFailure(100, 8, func(i int) error {
			if i == 3 || i == 7 || i == 95 {
				return fmt.Errorf("fail at %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail at 3" {
			t.Fatalf("trial %d: got %v, want fail at 3", trial, err)
		}
	}
	if err := firstFailure(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestParallelReorderTableMatchesSerial recomputes Fig. 11a with and
// without the worker pool and requires identical tables.
func TestParallelReorderTableMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("recomputes the full Fig. 11a table twice")
	}
	par := ReorderTable()
	ser := ReorderTableSerial()
	if par != ser {
		t.Fatalf("parallel table differs from serial:\nparallel:\n%s\nserial:\n%s",
			FormatTable(par), FormatTable(ser))
	}
}

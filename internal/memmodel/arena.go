package memmodel

import "sync"

// This file implements the preallocated scratch arena behind the serial
// bounded checkers. The enumeration core was already allocation-free in its
// steady state *within* one program (see the walker/evaluator arenas), but
// the bounded sweeps — the Fig. 11a reorder checker, the Thm 7.1 exhaustive
// mapping campaigns — build tens of thousands of tiny enumeration spaces per
// second, and every newEnumSpace/buildStatics/evaluator constructor paid a
// fresh round of small allocations. The arena batches all of those into a
// handful of grow-only slabs that are reset between checks, so the
// steady-state cost of checking one more program is (amortized) zero
// allocations for the enumeration machinery itself.
//
// Slab discipline: take() hands out a cleared, capacity-clamped sub-slice of
// the current block; reset() rewinds the block without freeing it. When a
// block is exhausted mid-cycle a bigger one is allocated and the old block
// stays alive behind the slices already handed out — stale but valid — so
// takes never invalidate earlier takes. After a few cycles one block covers
// a whole check and the slab stops allocating.

type slab[T any] struct {
	buf []T
	off int
}

func (s *slab[T]) take(n int) []T {
	if n == 0 {
		return nil
	}
	if s.off+n > len(s.buf) {
		sz := 2 * len(s.buf)
		if sz < n {
			sz = n
		}
		if sz < 64 {
			sz = 64
		}
		s.buf = make([]T, sz)
		s.off = 0
	}
	out := s.buf[s.off : s.off+n : s.off+n]
	s.off += n
	clear(out)
	return out
}

func (s *slab[T]) reset() { s.off = 0 }

// arena pools every per-program structure of the serial fold path. A nil
// *arena is valid everywhere and falls back to plain allocation, so the
// pooled and unpooled paths share one implementation. An arena is not safe
// for concurrent use; parallel sweeps hold one per worker (see
// checkScratchPool).
//
// Lifetime contract: everything taken from the arena is valid until the next
// reset(). One reset cycle covers one "check" — typically a source fold plus
// a target fold whose behavior sets are compared before the next reset — so
// inclusion checks may freely hold both folds' sets at once.
type arena struct {
	words   slab[uint64]
	rels    slab[relation]
	ints    slab[int]
	int32s  slab[int32]
	bools   slab[bool]
	events  slab[Event]
	evptrs  slab[*Event]
	evptrss slab[[]*Event]
	strs    slab[string]
	rmwps   slab[rmwPair]
	intss   slab[[]int]
	intsss  slab[[][]int]
	spaces  slab[enumSpace]
	stats   slab[statics]
	walkers slab[walker]
	execs   slab[Execution]
	evals   slab[evaluator]

	// orders accumulates the per-location coherence permutations of the
	// space under construction; coChoices holds sub-slices of it. It is
	// rewound per space, not per reset: only the space being enumerated
	// reads it.
	orders [][]int

	// keys interns read behavior keys ("t0.X.1") across the arena's whole
	// lifetime — the key universe of a bounded sweep is tiny and shared by
	// almost every program, so after warmup key construction allocates
	// nothing.
	keys   map[string]string
	keyBuf []byte

	// bsets recycles behavior sets (two per inclusion check).
	bsets []*behaviorSet
	bcur  int
}

// reset rewinds every slab for the next check. Interned keys and recycled
// behavior sets survive resets by design.
func (a *arena) reset() {
	if a == nil {
		return
	}
	a.words.reset()
	a.rels.reset()
	a.ints.reset()
	a.int32s.reset()
	a.bools.reset()
	a.events.reset()
	a.evptrs.reset()
	a.evptrss.reset()
	a.strs.reset()
	a.rmwps.reset()
	a.intss.reset()
	a.intsss.reset()
	a.spaces.reset()
	a.stats.reset()
	a.walkers.reset()
	a.execs.reset()
	a.evals.reset()
	a.bcur = 0
}

// newRel is the arena-aware newRel: nil falls back to a fresh allocation.
func (a *arena) newRel(n int) *relation {
	if a == nil {
		return newRel(n)
	}
	return &a.relArena(n, 1)[0]
}

// relArena is the arena-aware newRelArena.
func (a *arena) relArena(n, count int) []relation {
	if a == nil {
		return newRelArena(n, count)
	}
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	row := n * w
	rs := a.rels.take(count)
	backing := a.words.take(count * row)
	for i := range rs {
		rs[i] = relation{n: n, w: w, bits: backing[i*row : (i+1)*row : (i+1)*row]}
	}
	return rs
}

// internKey returns the canonical interned copy of the key bytes in
// a.keyBuf, allocating only the first time a key is seen.
func (a *arena) internKey() string {
	if a.keys == nil {
		a.keys = make(map[string]string, 64)
	}
	if s, ok := a.keys[string(a.keyBuf)]; ok {
		return s
	}
	s := string(a.keyBuf)
	a.keys[s] = s
	return s
}

// behaviorSet hands out a recycled (or fresh) behavior set bound to k.
func (a *arena) behaviorSet(k *statics, withReads bool) *behaviorSet {
	if a == nil {
		return newBehaviorSet(k, withReads)
	}
	if a.bcur == len(a.bsets) {
		a.bsets = append(a.bsets, &behaviorSet{interned: map[ikey]struct{}{}})
	}
	bs := a.bsets[a.bcur]
	a.bcur++
	bs.k, bs.withReads = k, withReads
	clear(bs.interned)
	bs.slow = nil
	return bs
}

// CheckScratch is the reusable scratch state of one serial bounded-checker
// worker: the enumeration arena plus nothing else. It exists so sweeps that
// check thousands of programs (the reorder table, the campaign engine)
// amortize all per-program setup allocations. Not safe for concurrent use;
// hold one per goroutine.
type CheckScratch struct {
	a arena
}

// NewCheckScratch returns an empty scratch; the first few checks grow its
// slabs, after which checking is allocation-free modulo program construction.
func NewCheckScratch() *CheckScratch { return &CheckScratch{} }

// checkScratchPool recycles scratches for package-internal sweeps (the
// Fig. 11a cells) whose workers are anonymous pool goroutines.
var checkScratchPool = sync.Pool{New: func() any { return NewCheckScratch() }}

package memmodel

import "testing"

// allocProbePrograms are the shapes the steady-state allocation contract is
// checked on: multi-location, fence-bearing and RMW-bearing programs.
func allocProbePrograms() []*Program {
	return []*Program{
		{Name: "SB", Threads: [][]Op{
			{St("X", 1), Ld("Y")},
			{St("Y", 1), Ld("X")},
		}},
		{Name: "IRIW+f", Threads: [][]Op{
			{St("X", 1)},
			{St("Y", 1)},
			{Ld("X"), Fn(Fsc), Ld("Y")},
			{Ld("Y"), Fn(Fsc), Ld("X")},
		}},
		{Name: "RMW-MP", Threads: [][]Op{
			{St("X", 1), RMW("Y", 1)},
			{Ld("Y"), Ld("X")},
		}},
	}
}

// TestSteadyStateVisitAllocationFree pins the walker/evaluator arena
// contract: once a program's enumeration has run once (interning every
// distinct behavior), re-walking the whole space — every candidate visited,
// consistency-checked and folded — performs zero heap allocations, under
// every model.
func TestSteadyStateVisitAllocationFree(t *testing.T) {
	for _, p := range allocProbePrograms() {
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			s := newEnumSpace(p)
			w := s.newAliasWalker()
			ev := newEvaluator(s, m)
			acc := newBehaviorSet(s.stat, true)
			visit := func(x *Execution) {
				if ev.consistent(x) {
					acc.add(x)
				}
			}
			w.walkCo(0, visit) // warm: grow maps, intern every behavior
			allocs := testing.AllocsPerRun(5, func() { w.walkCo(0, visit) })
			if allocs != 0 {
				t.Errorf("%s under %s: %.1f allocs per steady-state enumeration pass, want 0",
					p.Name, m.Name, allocs)
			}
		}
	}
}

// TestSteadyStateCheckAllocationFree pins the CheckScratch arena contract
// behind the bounded sweeps: once a scratch is warm, a full inclusion check
// — building both enumeration spaces, hoisting statics, enumerating,
// folding and comparing two behavior sets — performs zero heap allocations.
func TestSteadyStateCheckAllocationFree(t *testing.T) {
	sc := NewCheckScratch()
	for _, p := range allocProbePrograms() {
		src := p
		tgt := &Program{Name: p.Name + "-tgt", Threads: p.Threads}
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			inclusionScratch(src, tgt, m, sc) // warm: grow slabs, intern keys
			allocs := testing.AllocsPerRun(5, func() { inclusionScratch(src, tgt, m, sc) })
			if allocs != 0 {
				t.Errorf("%s under %s: %.1f allocs per steady-state inclusion check, want 0",
					p.Name, m.Name, allocs)
			}
		}
	}
}

// TestReorderCellAllocBudget pins the whole-cell allocation budget: one
// Fig. 11a cell sweeps ~1400 context programs, and with the scratch pools
// warm the per-cell total must stay within a small constant budget (the
// pool round-trips and the error-free fan-out, nothing proportional to the
// number of contexts checked). The pre-arena implementation spent ~17k
// allocations per cell.
func TestReorderCellAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("sweeps full reorder cells repeatedly")
	}
	checkReorder(CatRna, CatWna, 1) // warm the pools
	allocs := testing.AllocsPerRun(2, func() { checkReorder(CatRna, CatWna, 1) })
	// 42 allocs for the full 49-cell table when warm; one cell gets
	// generous headroom over the measured ~1-2.
	const budget = 50
	if allocs > budget {
		t.Errorf("checkReorder(Rna, Wna): %.0f allocs per warm cell, budget %d", allocs, budget)
	}
}

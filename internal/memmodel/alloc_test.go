package memmodel

import "testing"

// allocProbePrograms are the shapes the steady-state allocation contract is
// checked on: multi-location, fence-bearing and RMW-bearing programs.
func allocProbePrograms() []*Program {
	return []*Program{
		{Name: "SB", Threads: [][]Op{
			{St("X", 1), Ld("Y")},
			{St("Y", 1), Ld("X")},
		}},
		{Name: "IRIW+f", Threads: [][]Op{
			{St("X", 1)},
			{St("Y", 1)},
			{Ld("X"), Fn(Fsc), Ld("Y")},
			{Ld("Y"), Fn(Fsc), Ld("X")},
		}},
		{Name: "RMW-MP", Threads: [][]Op{
			{St("X", 1), RMW("Y", 1)},
			{Ld("Y"), Ld("X")},
		}},
	}
}

// TestSteadyStateVisitAllocationFree pins the walker/evaluator arena
// contract: once a program's enumeration has run once (interning every
// distinct behavior), re-walking the whole space — every candidate visited,
// consistency-checked and folded — performs zero heap allocations, under
// every model.
func TestSteadyStateVisitAllocationFree(t *testing.T) {
	for _, p := range allocProbePrograms() {
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			s := newEnumSpace(p)
			w := s.newAliasWalker()
			ev := newEvaluator(s, m)
			acc := newBehaviorSet(s.stat, true)
			visit := func(x *Execution) {
				if ev.consistent(x) {
					acc.add(x)
				}
			}
			w.walkCo(0, visit) // warm: grow maps, intern every behavior
			allocs := testing.AllocsPerRun(5, func() { w.walkCo(0, visit) })
			if allocs != 0 {
				t.Errorf("%s under %s: %.1f allocs per steady-state enumeration pass, want 0",
					p.Name, m.Name, allocs)
			}
		}
	}
}

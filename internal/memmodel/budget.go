package memmodel

import (
	"context"
	"fmt"
	"sync/atomic"

	"lasagne/internal/diag"
)

// Budget bounds an enumeration. The zero value is unbounded — the behavior
// of the non-Budget entry points. A bounded enumeration that runs out
// returns an error wrapping diag.ErrBudgetExceeded and whatever partial
// results were folded before the cutoff.
type Budget struct {
	// Ctx aborts the enumeration when it is done. Nil means no deadline.
	Ctx context.Context
	// MaxVisits caps the number of candidate executions visited across all
	// workers. Zero means unlimited.
	MaxVisits int64
}

// ctxPollInterval is how many visited candidates pass between context
// polls; candidate visits are sub-microsecond, so polling each one would
// dominate the walk.
const ctxPollInterval = 256

// limiter enforces one Budget across the (possibly parallel) enumeration
// workers. A nil limiter is the unbounded fast path: one nil check per
// visited candidate.
type limiter struct {
	ctx       context.Context
	maxVisits int64
	visits    atomic.Int64
	stopped   atomic.Bool
	cause     atomic.Value // error
}

func newLimiter(b Budget) *limiter {
	if b.Ctx == nil && b.MaxVisits <= 0 {
		return nil
	}
	return &limiter{ctx: b.Ctx, maxVisits: b.MaxVisits}
}

// take consumes one candidate visit; false means the walk must stop.
func (l *limiter) take() bool {
	if l == nil {
		return true
	}
	if l.stopped.Load() {
		return false
	}
	n := l.visits.Add(1)
	if l.maxVisits > 0 && n > l.maxVisits {
		l.stop(fmt.Errorf("memmodel: enumeration cut off after %d candidate executions: %w",
			l.maxVisits, diag.ErrBudgetExceeded))
		return false
	}
	if l.ctx != nil && n%ctxPollInterval == 0 {
		if err := l.ctx.Err(); err != nil {
			l.stop(fmt.Errorf("memmodel: enumeration interrupted after %d candidate executions: %w (%v)",
				n, diag.ErrBudgetExceeded, err))
			return false
		}
	}
	return true
}

func (l *limiter) stop(err error) {
	if l.stopped.CompareAndSwap(false, true) {
		l.cause.Store(err)
	}
}

// err returns the budget violation, or nil when the walk ran to completion.
func (l *limiter) err() error {
	if l == nil || !l.stopped.Load() {
		return nil
	}
	if e, ok := l.cause.Load().(error); ok {
		return e
	}
	return diag.ErrBudgetExceeded
}

// expired pre-checks a context so an already-dead deadline fails before any
// enumeration work happens.
func (l *limiter) expired() bool {
	if l == nil || l.ctx == nil {
		return false
	}
	if err := l.ctx.Err(); err != nil {
		l.stop(fmt.Errorf("memmodel: enumeration not started: %w (%v)", diag.ErrBudgetExceeded, err))
		return true
	}
	return false
}

// VisitExecutionsBudget is VisitExecutions under a Budget: the walk stops
// as soon as the budget is exhausted and the cutoff is reported as an error
// wrapping diag.ErrBudgetExceeded. Candidates visited before the cutoff
// were delivered to visit, so a caller folding results holds a valid
// partial answer.
func VisitExecutionsBudget(p *Program, b Budget, visit func(*Execution)) error {
	lim := newLimiter(b)
	if lim.expired() {
		return lim.err()
	}
	s := newEnumSpace(p)
	w := s.newWalker(false)
	w.lim = lim
	w.walkCo(0, visit)
	return lim.err()
}

// BehaviorsOfBudget is BehaviorsOf under a Budget. On cutoff the returned
// map holds the behaviors of the candidates visited so far — a sound
// underapproximation — together with the budget error.
//
// The fold runs on the bitset engine: the model's skeleton-static order is
// hoisted once, the walker's scratch arena (relation buffers, dense co
// index, interned behavior keys) is reused across candidates, and the
// steady-state per-candidate path performs zero heap allocations.
func BehaviorsOfBudget(p *Program, m Model, withReads bool, b Budget) (map[string]Behavior, error) {
	acc, err := foldBehaviorsBudget(p, m, withReads, 1, b)
	return acc.result(), err
}

// CheckMappingBudget verifies Theorem 7.1 on one program under a Budget.
// A cutoff yields the budget error, never a verdict: behavior-set inclusion
// over partial sets proves nothing in either direction.
func CheckMappingBudget(src *Program, srcModel Model, mapFn func(*Program) *Program, tgtModel Model, b Budget) error {
	tgt := mapFn(src)
	srcS, err := foldBehaviorsBudget(src, srcModel, true, DefaultParallelism, b)
	if err != nil {
		return fmt.Errorf("checking %s under %s: %w", src.Name, srcModel.Name, err)
	}
	tgtS, err := foldBehaviorsBudget(tgt, tgtModel, true, DefaultParallelism, b)
	if err != nil {
		return fmt.Errorf("checking %s under %s: %w", tgt.Name, tgtModel.Name, err)
	}
	return compareFolds(src, srcModel, tgtModel, srcS, tgtS)
}

// CheckMappingScratch is CheckMappingBudget with every per-check structure
// drawn from sc and both folds run serially on the calling goroutine. It is
// the campaign engine's inner loop: a sweep checking many small programs
// holds one scratch per worker, and once the scratch is warm each additional
// check allocates nothing beyond the mapped program itself. A nil scratch
// falls back to plain allocation.
func CheckMappingScratch(src *Program, srcModel Model, mapFn func(*Program) *Program, tgtModel Model, b Budget, sc *CheckScratch) error {
	var a *arena
	if sc != nil {
		a = &sc.a
		a.reset()
	}
	tgt := mapFn(src)
	srcS, err := foldBehaviorsArena(src, srcModel, true, 1, b, a)
	if err != nil {
		return fmt.Errorf("checking %s under %s: %w", src.Name, srcModel.Name, err)
	}
	tgtS, err := foldBehaviorsArena(tgt, tgtModel, true, 1, b, a)
	if err != nil {
		return fmt.Errorf("checking %s under %s: %w", tgt.Name, tgtModel.Name, err)
	}
	return compareFolds(src, srcModel, tgtModel, srcS, tgtS)
}

package memmodel

// scPerLoc checks SC-per-location: (po|loc ∪ rf ∪ co ∪ fr) is acyclic.
// Both x86 and Arm satisfy it, and LIMM requires it (§6.2).
func scPerLoc(x *Execution, r *rels) bool {
	rel := newRel(r.n)
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID {
				continue
			}
			if r.poR.has(a.ID, b.ID) && a.Kind != EvF && b.Kind != EvF && a.Loc == b.Loc {
				rel.set(a.ID, b.ID)
			}
		}
	}
	rel.union(r.rf)
	rel.union(r.co)
	rel.union(r.fr)
	rel.transitiveClosure()
	return rel.irreflexive()
}

// atomicity checks rmw ∩ (fre;coe) = ∅ (§6.2).
func atomicity(x *Execution, r *rels) bool {
	for _, a := range r.events {
		if a.Kind != EvR || a.RMW < 0 {
			continue
		}
		w := a.RMW
		// Exists w' with fre(a, w') and coe(w', w)?
		for _, wp := range r.events {
			if wp.Kind == EvW && r.fre.has(a.ID, wp.ID) && r.coe.has(wp.ID, w) {
				return false
			}
		}
	}
	return true
}

// X86 implements the (GHB) axiom of Fig. 6:
//
//	ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
//	implid  = po;[At ∪ F] ∪ [At ∪ F];po      At = dom(rmw) ∪ codom(rmw)
//	hb      = ppo ∪ implid ∪ rfe ∪ fr ∪ co
//	axiom: hb+ irreflexive
var X86 = Model{Name: "x86", Consistent: func(x *Execution, r *rels) bool {
	hb := newRel(r.n)
	isAt := func(e *Event) bool { return e.RMW >= 0 }
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) {
				continue
			}
			// ppo.
			switch {
			case a.Kind == EvW && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvR:
				hb.set(a.ID, b.ID)
			}
			// implid: ordering through fences and atomics.
			aF := a.Kind == EvF && a.Fen == MFENCE
			bF := b.Kind == EvF && b.Fen == MFENCE
			if isAt(b) || bF || isAt(a) || aF {
				hb.set(a.ID, b.ID)
			}
		}
	}
	hb.union(r.rfe)
	hb.union(r.fr)
	hb.union(r.co)
	hb.transitiveClosure()
	return hb.irreflexive()
}}

// Arm implements the (external) axiom of Fig. 6 following Pulte et al.:
//
//	obs = rfe ∪ coe ∪ fre
//	aob = rmw
//	bob = po;[DMBFF];po ∪ [R];po;[DMBLD];po ∪ [W];po;[DMBST];po;[W]
//	ob  = (obs ∪ aob ∪ dob ∪ bob)+ irreflexive
//
// Dependency ordering (dob) is omitted: our litmus programs carry no
// address/data/control dependencies, and dropping dob only *weakens* the
// target model, making the mapping-correctness check stricter (§6.2).
var Arm = Model{Name: "arm", Consistent: func(x *Execution, r *rels) bool {
	ob := newRel(r.n)
	ob.union(r.rfe)
	ob.union(r.coe)
	ob.union(r.fre)
	ob.union(r.rmw)
	// Release/acquire half-fence ordering (Appendix A, following Pulte et
	// al.): an acquire read orders before everything po-after it; a
	// release write orders after everything po-before it.
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) || a.Tid != b.Tid {
				continue
			}
			if a.Kind == EvR && a.Acq {
				ob.set(a.ID, b.ID)
			}
			if b.Kind == EvW && b.Rel {
				ob.set(a.ID, b.ID)
			}
		}
	}
	// bob.
	for _, f := range r.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range r.events {
			if !r.poR.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range r.events {
				if !r.poR.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case DMBFF:
					if a.Kind != EvF && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBLD:
					if a.Kind == EvR && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBST:
					if a.Kind == EvW && b.Kind == EvW {
						ob.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	ob.transitiveClosure()
	return ob.irreflexive()
}}

// LIMM implements the (GOrd) axiom of Fig. 7:
//
//	ord1 = [R];po;[Frm];po;[R∪W]
//	ord2 = [W];po;[Fww];po;[W]
//	ord3 = [Fsc ∪ Rsc ∪ codom(rmw)];po
//	ord4 = po;[Fsc ∪ Wsc ∪ dom(rmw)]
//	ghb  = (ord ∪ rfe ∪ coe ∪ fre)+ irreflexive
var LIMM = Model{Name: "limm", Consistent: func(x *Execution, r *rels) bool {
	ghb := newRel(r.n)
	ghb.union(r.rfe)
	ghb.union(r.coe)
	ghb.union(r.fre)

	isRsc := func(e *Event) bool { return e.Kind == EvR && e.SC }
	isWsc := func(e *Event) bool { return e.Kind == EvW && e.SC }
	rmwR := func(e *Event) bool { return e.Kind == EvR && e.RMW >= 0 }
	rmwW := func(e *Event) bool { return e.Kind == EvW && e.RMW >= 0 }

	// ord1/ord2: fence-mediated ordering between same-thread accesses.
	for _, f := range r.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range r.events {
			if !r.poR.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range r.events {
				if !r.poR.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case Frm:
					if a.Kind == EvR && (b.Kind == EvR || b.Kind == EvW) {
						ghb.set(a.ID, b.ID)
					}
				case Fww:
					if a.Kind == EvW && b.Kind == EvW {
						ghb.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	// ord3/ord4.
	for _, a := range r.events {
		for _, b := range r.events {
			if a.ID == b.ID || !r.poR.has(a.ID, b.ID) {
				continue
			}
			aFsc := a.Kind == EvF && a.Fen == Fsc
			bFsc := b.Kind == EvF && b.Fen == Fsc
			if aFsc || isRsc(a) || rmwW(a) { // ord3
				ghb.set(a.ID, b.ID)
			}
			if bFsc || isWsc(b) || rmwR(b) { // ord4
				ghb.set(a.ID, b.ID)
			}
		}
	}
	ghb.transitiveClosure()
	return ghb.irreflexive()
}}

// SC is the sequential-consistency reference model (interleaving only),
// used as an oracle in tests: hb = po ∪ rf ∪ co ∪ fr acyclic.
var SC = Model{Name: "sc", Consistent: func(x *Execution, r *rels) bool {
	hb := newRel(r.n)
	hb.union(r.poR)
	hb.union(r.rf)
	hb.union(r.co)
	hb.union(r.fr)
	hb.transitiveClosure()
	return hb.irreflexive()
}}

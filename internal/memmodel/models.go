package memmodel

// Model is a consistency predicate over executions, factored for the bitset
// engine: `static` builds the skeleton-invariant part of the model's
// ordering relation (everything derivable from po, event kinds, fences and
// rmw pairs — computed once per program by the enumeration drivers), and the
// ext* flags say whether the execution-varying rf/co/fr edges enter the
// order restricted to external pairs (rfe/coe/fre) or in full. The axiom
// itself is uniform: static ∪ dynamic edges must be acyclic (see
// evaluator.consistent in eval.go). The original per-execution closures are
// retained in reference.go as referenceConsistent.
type Model struct {
	Name string
	// static builds the skeleton-invariant ordering edges on k. The arena
	// may be nil (plain allocation); when non-nil the relation is drawn from
	// it and lives until the arena's next reset.
	static func(k *statics, a *arena) *relation
	// extRF/extCO/extFR: true means only external (cross-thread) rf/co/fr
	// edges enter the order; false means all of them do.
	extRF, extCO, extFR bool
}

// X86 implements the (GHB) axiom of Fig. 6:
//
//	ppo     = ((W×W) ∪ (R×W) ∪ (R×R)) ∩ po
//	implid  = po;[At ∪ F] ∪ [At ∪ F];po      At = dom(rmw) ∪ codom(rmw)
//	hb      = ppo ∪ implid ∪ rfe ∪ fr ∪ co
//	axiom: hb+ irreflexive
//
// ppo and implid depend only on the skeleton, so they are hoisted; rfe, fr
// and co are ORed in per execution.
var X86 = Model{Name: "x86", extRF: true, static: func(k *statics, a *arena) *relation {
	hb := a.newRel(k.n)
	isAt := func(e *Event) bool { return e.RMW >= 0 }
	for _, a := range k.events {
		for _, b := range k.events {
			if a.ID == b.ID || !k.po.has(a.ID, b.ID) {
				continue
			}
			// ppo.
			switch {
			case a.Kind == EvW && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvW,
				a.Kind == EvR && b.Kind == EvR:
				hb.set(a.ID, b.ID)
			}
			// implid: ordering through fences and atomics.
			aF := a.Kind == EvF && a.Fen == MFENCE
			bF := b.Kind == EvF && b.Fen == MFENCE
			if isAt(b) || bF || isAt(a) || aF {
				hb.set(a.ID, b.ID)
			}
		}
	}
	return hb
}}

// Arm implements the (external) axiom of Fig. 6 following Pulte et al.:
//
//	obs = rfe ∪ coe ∪ fre
//	aob = rmw
//	bob = po;[DMBFF];po ∪ [R];po;[DMBLD];po ∪ [W];po;[DMBST];po;[W]
//	ob  = (obs ∪ aob ∪ dob ∪ bob)+ irreflexive
//
// Dependency ordering (dob) is omitted: our litmus programs carry no
// address/data/control dependencies, and dropping dob only *weakens* the
// target model, making the mapping-correctness check stricter (§6.2).
// aob, bob and the Appendix A half-fence edges are all skeleton-static.
var Arm = Model{Name: "arm", extRF: true, extCO: true, extFR: true, static: func(k *statics, a *arena) *relation {
	ob := a.newRel(k.n)
	for _, p := range k.rmws {
		ob.set(p.r, p.w) // aob
	}
	// Release/acquire half-fence ordering (Appendix A, following Pulte et
	// al.): an acquire read orders before everything po-after it; a
	// release write orders after everything po-before it.
	for _, a := range k.events {
		for _, b := range k.events {
			if a.ID == b.ID || !k.po.has(a.ID, b.ID) || a.Tid != b.Tid {
				continue
			}
			if a.Kind == EvR && a.Acq {
				ob.set(a.ID, b.ID)
			}
			if b.Kind == EvW && b.Rel {
				ob.set(a.ID, b.ID)
			}
		}
	}
	// bob.
	for _, f := range k.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range k.events {
			if !k.po.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range k.events {
				if !k.po.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case DMBFF:
					if a.Kind != EvF && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBLD:
					if a.Kind == EvR && b.Kind != EvF {
						ob.set(a.ID, b.ID)
					}
				case DMBST:
					if a.Kind == EvW && b.Kind == EvW {
						ob.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	return ob
}}

// LIMM implements the (GOrd) axiom of Fig. 7:
//
//	ord1 = [R];po;[Frm];po;[R∪W]
//	ord2 = [W];po;[Fww];po;[W]
//	ord3 = [Fsc ∪ Rsc ∪ codom(rmw)];po
//	ord4 = po;[Fsc ∪ Wsc ∪ dom(rmw)]
//	ghb  = (ord ∪ rfe ∪ coe ∪ fre)+ irreflexive
//
// ord1–ord4 are skeleton-static and hoisted.
var LIMM = Model{Name: "limm", extRF: true, extCO: true, extFR: true, static: func(k *statics, a *arena) *relation {
	ghb := a.newRel(k.n)

	isRsc := func(e *Event) bool { return e.Kind == EvR && e.SC }
	isWsc := func(e *Event) bool { return e.Kind == EvW && e.SC }
	rmwR := func(e *Event) bool { return e.Kind == EvR && e.RMW >= 0 }
	rmwW := func(e *Event) bool { return e.Kind == EvW && e.RMW >= 0 }

	// ord1/ord2: fence-mediated ordering between same-thread accesses.
	for _, f := range k.events {
		if f.Kind != EvF {
			continue
		}
		for _, a := range k.events {
			if !k.po.has(a.ID, f.ID) || a.Tid != f.Tid {
				continue
			}
			for _, b := range k.events {
				if !k.po.has(f.ID, b.ID) || b.Tid != f.Tid {
					continue
				}
				switch f.Fen {
				case Frm:
					if a.Kind == EvR && (b.Kind == EvR || b.Kind == EvW) {
						ghb.set(a.ID, b.ID)
					}
				case Fww:
					if a.Kind == EvW && b.Kind == EvW {
						ghb.set(a.ID, b.ID)
					}
				}
			}
		}
	}
	// ord3/ord4.
	for _, a := range k.events {
		for _, b := range k.events {
			if a.ID == b.ID || !k.po.has(a.ID, b.ID) {
				continue
			}
			aFsc := a.Kind == EvF && a.Fen == Fsc
			bFsc := b.Kind == EvF && b.Fen == Fsc
			if aFsc || isRsc(a) || rmwW(a) { // ord3
				ghb.set(a.ID, b.ID)
			}
			if bFsc || isWsc(b) || rmwR(b) { // ord4
				ghb.set(a.ID, b.ID)
			}
		}
	}
	return ghb
}}

// SC is the sequential-consistency reference model (interleaving only),
// used as an oracle in tests: hb = po ∪ rf ∪ co ∪ fr acyclic. Its static
// part is po itself.
var SC = Model{Name: "sc", static: func(k *statics, a *arena) *relation {
	hb := a.newRel(k.n)
	hb.copyFrom(k.po)
	return hb
}}

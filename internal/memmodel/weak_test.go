package memmodel

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// weakMap is the full weak lowering pipeline: Fig. 8a placement, then the
// strengthening rewrite on the way to Arm.
func weakMap(q *Program) *Program {
	return MapIRToArmWeak(MapX86ToIR(q))
}

// elideMap additionally drops fences around accesses the litmus-level
// "escape analysis" (PrivateLocs) proves thread-local.
func elideMap(q *Program) *Program {
	return MapIRToArmWeak(MapX86ToIRElide(q, PrivateLocs(q)))
}

// The classic litmus suite through the weak lowering: behaviors on Arm
// must stay within the x86 behaviors.
func TestWeakMappingClassic(t *testing.T) {
	for _, p := range ClassicTests() {
		if err := CheckMapping(p, X86, weakMap, Arm); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if err := CheckMapping(p, X86, elideMap, Arm); err != nil {
			t.Errorf("%s (elide): %v", p.Name, err)
		}
	}
}

// On the image of the x86 mapping every fence sits adjacent to its access,
// so strengthening should convert everything: MP lowers to a fence-free
// program of acquire loads and release stores, and stays sound.
func TestStrengthenConvertsMP(t *testing.T) {
	arm := weakMap(mp())
	acq, rel, fences := 0, 0, 0
	for _, th := range arm.Threads {
		for _, o := range th {
			switch {
			case o.Kind == OpFence:
				fences++
			case o.Acq:
				acq++
			case o.Rel:
				rel++
			}
		}
	}
	if fences != 0 || acq != 2 || rel != 2 {
		t.Fatalf("MP weak lowering: want 0 fences, 2 acquires, 2 releases; got %d/%d/%d",
			fences, acq, rel)
	}
	if err := CheckMapping(mp(), X86, weakMap, Arm); err != nil {
		t.Fatalf("fence-free MP lowering unsound: %v", err)
	}
}

// Exhaustive x86-source proof of the strengthened mapping (the analogue of
// TestMappingExhaustive for MapIRToArmWeak).
func TestWeakMappingExhaustive(t *testing.T) {
	max := 2
	if testing.Short() {
		max = 1
	}
	progs := GenerateX86Programs(max)
	t.Logf("checking %d generated programs", len(progs))
	for _, p := range progs {
		if err := CheckMapping(p, X86, weakMap, Arm); err != nil {
			t.Fatalf("%v", err)
		}
	}
}

// Exhaustive IR-source proof: MapIRToArmWeak must be sound for *arbitrary*
// LIMM programs, not just images of the x86 mapping, because the §7.2
// fence merger rewrites Frm/Fww into Fsc before lowering runs. This
// enumeration includes every fence kind and RMWs.
func TestWeakMappingIRExhaustive(t *testing.T) {
	max := 3
	if testing.Short() {
		max = 2
	}
	progs := GenerateIRPrograms(max)
	t.Logf("checking %d generated IR programs", len(progs))
	for _, p := range progs {
		if err := CheckMapping(p, LIMM, MapIRToArmWeak, Arm); err != nil {
			t.Fatalf("%v", err)
		}
	}
}

// Exhaustive proof of the escape-elimination rule: fences for locations
// accessed by a single thread may be dropped entirely.
func TestElisionExhaustive(t *testing.T) {
	max := 2
	if testing.Short() {
		max = 1
	}
	progs := GenerateX86Programs(max)
	elided := 0
	for _, p := range progs {
		if len(PrivateLocs(p)) > 0 {
			elided++
		}
		if err := CheckMapping(p, X86, elideMap, Arm); err != nil {
			t.Fatalf("%v", err)
		}
	}
	if elided == 0 {
		t.Fatal("enumeration produced no programs with private locations")
	}
	t.Logf("%d/%d programs had at least one private location", elided, len(progs))
}

// Deep-window sweep: the scan's abort/skip cases only become observable in
// threads of four or more ops (candidate + second access + fence +
// downstream access), beyond the symmetric enumeration's affordable depth.
// Pair every 4-op thread with a small set of canonical observers.
func TestWeakScanDeepWindows(t *testing.T) {
	if testing.Short() {
		t.Skip("deep-window sweep skipped in -short mode")
	}
	ops := []Op{
		Ld("X"), Ld("Y"),
		St("X", 1), St("Y", 1),
		RMW("X", 2),
		Fn(Frm), Fn(Fww), Fn(Fsc),
	}
	var deep [][]Op
	var gen func(cur []Op)
	gen = func(cur []Op) {
		if len(cur) == 4 {
			deep = append(deep, append([]Op(nil), cur...))
			return
		}
		for _, o := range ops {
			gen(append(cur, o))
		}
	}
	gen(nil)
	observers := [][]Op{
		{Ld("X"), Fn(Frm), Ld("Y")},
		{Ld("Y"), Fn(Frm), Ld("X")},
		{St("X", 3), Fn(Fww), St("Y", 3)},
		{Ld("Y"), Fn(Frm), St("X", 3)},
	}
	n := 0
	for i, t0 := range deep {
		for j, obs := range observers {
			p := &Program{
				Name:    fmt.Sprintf("deep_%d_%d", i, j),
				Threads: [][]Op{t0, obs},
			}
			if err := CheckMapping(p, LIMM, MapIRToArmWeak, Arm); err != nil {
				t.Fatalf("%v", err)
			}
			n++
		}
	}
	t.Logf("checked %d deep-window programs", n)
}

// The window condition is load-bearing: a naive peephole that converts any
// adjacent ld;Frm pair loses the fence's ordering for *other* uncovered
// reads in the window. StrengthenIR must decline here, and CheckMapping
// must catch the naive version.
func TestStrengthenWindowAbort(t *testing.T) {
	// T0's Frm orders BOTH Ld A and Ld X before St Z. Converting only
	// Ld X to acquire leaves Ld A free to reorder past St Z, completing
	// an LB-style cycle with T1.
	p := &Program{Name: "two-reads-one-frm", Threads: [][]Op{
		{Ld("A"), Ld("X"), Fn(Frm), St("Z", 1)},
		{Ld("Z"), Fn(Frm), St("A", 1)},
	}}

	s := StrengthenIR(p)
	frm := 0
	for _, o := range s.Threads[0] {
		if o.Kind == OpFence && o.Fence == Frm {
			frm++
		}
	}
	if frm != 1 {
		t.Fatalf("T0's Frm must survive (two uncovered reads in window); got %d Frm", frm)
	}
	if err := CheckMapping(p, LIMM, MapIRToArmWeak, Arm); err != nil {
		t.Fatalf("scan-based lowering should be sound: %v", err)
	}

	naive := func(q *Program) *Program {
		out := &Program{Name: q.Name + "→Arm(naive)", Init: q.Init}
		for _, th := range q.Threads {
			var tt []Op
			for i := 0; i < len(th); i++ {
				o := th[i]
				if o.Kind == OpLoad && !o.SC && !o.Acq && i+1 < len(th) &&
					th[i+1].Kind == OpFence && th[i+1].Fence == Frm {
					tt = append(tt, LdA(o.Loc))
					i++
					continue
				}
				switch o.Kind {
				case OpRMW:
					tt = append(tt, Fn(DMBFF), o, Fn(DMBFF))
				case OpFence:
					switch o.Fence {
					case Frm:
						tt = append(tt, Fn(DMBLD))
					case Fww:
						tt = append(tt, Fn(DMBST))
					default:
						tt = append(tt, Fn(DMBFF))
					}
				default:
					tt = append(tt, o)
				}
			}
			out.Threads = append(out.Threads, tt)
		}
		return out
	}
	if err := CheckMapping(p, LIMM, naive, Arm); err == nil {
		t.Error("adjacency-only peephole should be unsound with a second uncovered read")
	}
}

// Precision (negative) tests: each weakening beyond what the rules allow
// must be observable, demonstrating the checker has teeth.
func TestWeakMappingPrecision(t *testing.T) {
	// Deleting the Frm without upgrading the load to acquire is unsound
	// (MP: the two loads may reorder).
	dropFrmNoAcq := func(q *Program) *Program {
		ir := MapX86ToIR(q)
		for ti, th := range ir.Threads {
			var tt []Op
			for i := 0; i < len(th); i++ {
				o := th[i]
				if o.Kind == OpLoad && !o.SC && i+1 < len(th) &&
					th[i+1].Kind == OpFence && th[i+1].Fence == Frm {
					tt = append(tt, Ld(o.Loc)) // plain load, fence gone
					i++
					continue
				}
				tt = append(tt, o)
			}
			ir.Threads[ti] = tt
		}
		return MapIRToArm(ir)
	}
	if err := CheckMapping(mp(), X86, dropFrmNoAcq, Arm); err == nil {
		t.Error("deleting Frm without an acquire load should be unsound on MP")
	}

	// Deleting the Fww without upgrading the store to release is unsound.
	dropFwwNoRel := func(q *Program) *Program {
		ir := MapX86ToIR(q)
		for ti, th := range ir.Threads {
			var tt []Op
			for i := 0; i < len(th); i++ {
				o := th[i]
				if o.Kind == OpFence && o.Fence == Fww && i+1 < len(th) &&
					th[i+1].Kind == OpStore && !th[i+1].SC {
					tt = append(tt, St(th[i+1].Loc, th[i+1].Val))
					i++
					continue
				}
				tt = append(tt, o)
			}
			ir.Threads[ti] = tt
		}
		return MapIRToArm(ir)
	}
	if err := CheckMapping(mp(), X86, dropFwwNoRel, Arm); err == nil {
		t.Error("deleting Fww without a release store should be unsound on MP")
	}

	// Eliding fences for a location that is actually shared is unsound —
	// the litmus analogue of a wrong escape-analysis verdict.
	elideShared := func(q *Program) *Program {
		return MapIRToArmWeak(MapX86ToIRElide(q, map[string]bool{"X": true, "Y": true}))
	}
	if err := CheckMapping(mp(), X86, elideShared, Arm); err == nil {
		t.Error("eliding fences on shared locations should be unsound on MP")
	}
}

// Correctly-classified MP has no private locations: the elide map must
// degrade to the plain mapping and keep every fence.
func TestElisionLeavesSharedAlone(t *testing.T) {
	p := mp()
	if locs := PrivateLocs(p); len(locs) != 0 {
		t.Fatalf("MP has no private locations, got %v", locs)
	}
	got := MapX86ToIRElide(p, PrivateLocs(p))
	want := MapX86ToIR(p)
	for ti := range want.Threads {
		if len(got.Threads[ti]) != len(want.Threads[ti]) {
			t.Fatalf("thread %d: elide map dropped fences on shared program", ti)
		}
	}
}

// Bounded smoke variant for CI: the classic suite plus a shallow generated
// sweep under an explicit visit budget and deadline. Must finish well
// under a minute.
func TestWeakMappingSmoke(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 45*time.Second)
	defer cancel()
	b := Budget{Ctx: ctx, MaxVisits: 2_000_000}
	for _, p := range ClassicTests() {
		if err := CheckMappingBudget(p, X86, weakMap, Arm, b); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	for _, p := range GenerateIRPrograms(1) {
		if err := CheckMappingBudget(p, LIMM, MapIRToArmWeak, Arm, b); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

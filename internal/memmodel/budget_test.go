package memmodel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"lasagne/internal/diag"
)

// iriw is large enough that every budget in these tests trips mid-walk.
func iriw() *Program {
	return &Program{Name: "IRIW", Threads: [][]Op{
		{St("X", 1)},
		{St("Y", 1)},
		{Ld("X"), Ld("Y")},
		{Ld("Y"), Ld("X")},
	}}
}

func TestBudgetMaxVisits(t *testing.T) {
	var visits int
	err := VisitExecutionsBudget(iriw(), Budget{MaxVisits: 5}, func(*Execution) { visits++ })
	if !errors.Is(err, diag.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if visits != 5 {
		t.Fatalf("visited %d candidates, want exactly 5", visits)
	}
}

func TestBudgetExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var visits int
	err := VisitExecutionsBudget(iriw(), Budget{Ctx: ctx}, func(*Execution) { visits++ })
	if !errors.Is(err, diag.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if visits != 0 {
		t.Fatalf("visited %d candidates under a dead context, want 0", visits)
	}
}

func TestBudgetUnboundedMatchesUnbudgeted(t *testing.T) {
	p := iriw()
	want := BehaviorsOf(p, Arm, true)
	got, err := BehaviorsOfBudget(p, Arm, true, Budget{})
	if err != nil {
		t.Fatalf("unbounded budget failed: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("behaviors %d != %d", len(got), len(want))
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("missing behavior %s", k)
		}
	}
}

func TestBudgetPartialIsSubset(t *testing.T) {
	p := iriw()
	full := BehaviorsOf(p, X86, true)
	part, err := BehaviorsOfBudget(p, X86, true, Budget{MaxVisits: 6})
	if !errors.Is(err, diag.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	for k := range part {
		if _, ok := full[k]; !ok {
			t.Fatalf("partial result %s not in the full behavior set", k)
		}
	}
}

func TestBudgetParallelSharedAcrossWorkers(t *testing.T) {
	// The cap is shared: the limiter admits exactly MaxVisits candidates in
	// total no matter how many workers draw from it.
	var visits atomic.Int64
	err := VisitExecutionsParallelBudget(iriw(), 4, Budget{MaxVisits: 7}, func(*Execution) {
		visits.Add(1)
	})
	if !errors.Is(err, diag.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if n := visits.Load(); n != 7 {
		t.Fatalf("visited %d candidates across workers, want exactly 7", n)
	}
}

func TestBudgetParallelUnboundedMatchesSerial(t *testing.T) {
	p := iriw()
	want := BehaviorsOf(p, LIMM, true)
	got, err := BehaviorsOfParallelBudget(p, LIMM, true, 4, Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("behaviors %d != %d", len(got), len(want))
	}
}

func TestCheckMappingBudgetDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	time.Sleep(2 * time.Millisecond) // guarantee expiry regardless of scheduling
	err := CheckMappingBudget(iriw(), X86, MapX86ToIR, LIMM, Budget{Ctx: ctx})
	if !errors.Is(err, diag.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
}

func TestCheckMappingBudgetUnbounded(t *testing.T) {
	if err := CheckMappingBudget(iriw(), X86, MapX86ToIR, LIMM, Budget{}); err != nil {
		t.Fatalf("mapping check failed: %v", err)
	}
}

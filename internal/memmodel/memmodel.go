// Package memmodel implements the axiomatic concurrency machinery of §6–7:
// events, the po/rf/co/fr/rmw relations, the consistency predicates of the
// x86-TSO, Armv8 and LIMM models, exhaustive enumeration of the consistent
// executions of litmus programs, and bounded checkers for the mapping
// correctness theorem (Thm 7.1) and the transformation soundness results
// (Fig. 11a/11b, fence merging). Where the paper proves these statements in
// ~12k lines of Agda, this package verifies them exhaustively over all
// programs up to a size bound — every ✓ in Fig. 11a is confirmed on every
// generated context, and every ✗ is witnessed by a concrete counterexample.
package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind is a litmus operation kind.
type OpKind int

const (
	OpLoad OpKind = iota
	OpStore
	OpRMW // unconditional atomic read-modify-write (reads, then writes Val)
	OpFence
)

// Fence identifies a fence at any level of the translation stack.
type Fence int

const (
	FenceNone Fence = iota
	// x86.
	MFENCE
	// IR (LIMM).
	Frm
	Fww
	Fsc
	// Arm.
	DMBFF
	DMBLD
	DMBST
)

var fenceNames = map[Fence]string{
	MFENCE: "mfence", Frm: "Frm", Fww: "Fww", Fsc: "Fsc",
	DMBFF: "dmb.ff", DMBLD: "dmb.ld", DMBST: "dmb.st",
}

// Op is one instruction of a litmus thread.
type Op struct {
	Kind   OpKind
	Loc    string
	Val    int   // value written (stores, RMW)
	SC     bool  // seq_cst access (LIMM's Rsc/Wsc; x86/Arm accesses ignore it)
	Fence  Fence // for OpFence
	HasExp bool  // RMW with a required read value (the paper's RMW(x,vr,vw))
	Exp    int
	// Acq/Rel mark Arm acquire loads (LDAR) and release stores (STLR),
	// the half-fence accesses of Appendix A.
	Acq bool
	Rel bool
}

// Convenience constructors.
func Ld(loc string) Op          { return Op{Kind: OpLoad, Loc: loc} }
func St(loc string, v int) Op   { return Op{Kind: OpStore, Loc: loc, Val: v} }
func LdSC(loc string) Op        { return Op{Kind: OpLoad, Loc: loc, SC: true} }
func StSC(loc string, v int) Op { return Op{Kind: OpStore, Loc: loc, Val: v, SC: true} }
func RMW(loc string, v int) Op  { return Op{Kind: OpRMW, Loc: loc, Val: v, SC: true} }

// RMWE is an RMW that must read exp (the paper's RMW(x, vr, vw) notation).
func RMWE(loc string, exp, v int) Op {
	return Op{Kind: OpRMW, Loc: loc, Val: v, SC: true, HasExp: true, Exp: exp}
}

// LdA is an Arm acquire load (LDAR) and StR an Arm release store (STLR) —
// the Appendix A half-fence accesses.
func LdA(loc string) Op        { return Op{Kind: OpLoad, Loc: loc, Acq: true} }
func StR(loc string, v int) Op { return Op{Kind: OpStore, Loc: loc, Val: v, Rel: true} }
func Fn(f Fence) Op            { return Op{Kind: OpFence, Fence: f} }

func (o Op) String() string {
	switch o.Kind {
	case OpLoad:
		if o.SC {
			return "Rsc(" + o.Loc + ")"
		}
		return "R(" + o.Loc + ")"
	case OpStore:
		s := fmt.Sprintf("W(%s,%d)", o.Loc, o.Val)
		if o.SC {
			s = "Wsc" + s[1:]
		}
		return s
	case OpRMW:
		if o.HasExp {
			return fmt.Sprintf("RMW(%s,%d,%d)", o.Loc, o.Exp, o.Val)
		}
		return fmt.Sprintf("RMW(%s,%d)", o.Loc, o.Val)
	case OpFence:
		return fenceNames[o.Fence]
	}
	return "?"
}

// Program is a litmus test: initialization writes (default 0) plus threads.
type Program struct {
	Name    string
	Init    map[string]int
	Threads [][]Op
}

func (p *Program) String() string {
	var sb strings.Builder
	sb.WriteString(p.Name + ": ")
	for i, t := range p.Threads {
		if i > 0 {
			sb.WriteString(" || ")
		}
		for j, o := range t {
			if j > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(o.String())
		}
	}
	return sb.String()
}

// Locs returns the sorted set of locations used.
func (p *Program) Locs() []string {
	set := map[string]bool{}
	for l := range p.Init {
		set[l] = true
	}
	for _, t := range p.Threads {
		for _, o := range t {
			if o.Kind != OpFence {
				set[o.Loc] = true
			}
		}
	}
	var out []string
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// EvKind classifies events.
type EvKind int

const (
	EvR EvKind = iota
	EvW
	EvF
)

// Event is one execution event (§6.1).
type Event struct {
	ID   int
	Tid  int // -1 for initialization writes
	Idx  int // program order index within the thread
	Kind EvKind
	Loc  string
	Val  int // written value (W) or read value (R, filled per execution)
	SC   bool
	Acq  bool
	Rel  bool
	Fen  Fence
	RMW  int // partner event ID for rmw pairs, else -1
	// HasExp constrains the read value of an expected-value RMW.
	HasExp bool
	Exp    int
}

// Execution is a candidate execution: events plus the rf and co choices.
type Execution struct {
	Events []*Event
	RF     map[int]int      // read event ID -> write event ID
	CO     map[string][]int // location -> write event IDs in coherence order
	n      int
}

// buildEvents lowers a program to its event skeleton (shared across all
// executions).
func buildEvents(p *Program) []*Event {
	var evs []*Event
	id := 0
	add := func(e Event) *Event {
		e.ID = id
		id++
		ev := e
		evs = append(evs, &ev)
		return evs[len(evs)-1]
	}
	// Initialization writes.
	for _, loc := range p.Locs() {
		add(Event{Tid: -1, Kind: EvW, Loc: loc, Val: p.Init[loc], RMW: -1})
	}
	for tid, th := range p.Threads {
		for idx, o := range th {
			switch o.Kind {
			case OpLoad:
				add(Event{Tid: tid, Idx: idx, Kind: EvR, Loc: o.Loc, SC: o.SC, Acq: o.Acq, RMW: -1})
			case OpStore:
				add(Event{Tid: tid, Idx: idx, Kind: EvW, Loc: o.Loc, Val: o.Val, SC: o.SC, Rel: o.Rel, RMW: -1})
			case OpRMW:
				r := add(Event{Tid: tid, Idx: idx, Kind: EvR, Loc: o.Loc, SC: true, RMW: -1, HasExp: o.HasExp, Exp: o.Exp})
				w := add(Event{Tid: tid, Idx: idx, Kind: EvW, Loc: o.Loc, Val: o.Val, SC: true, RMW: -1})
				r.RMW, w.RMW = w.ID, r.ID
			case OpFence:
				add(Event{Tid: tid, Idx: idx, Kind: EvF, Fen: o.Fence, RMW: -1})
			}
		}
	}
	return evs
}

// po reports program order: same thread, earlier index; for rmw pairs the
// read precedes the write. Initialization writes precede everything.
func (x *Execution) po(a, b *Event) bool {
	if a.Tid == -1 && b.Tid != -1 {
		return true
	}
	if a.Tid != b.Tid {
		return false
	}
	if a.Idx != b.Idx {
		return a.Idx < b.Idx
	}
	// Same instruction: rmw read before rmw write.
	return a.Kind == EvR && b.Kind == EvW && a.RMW == b.ID
}

// coIndex returns the position of a write in its location's coherence
// order, with init first.
func (x *Execution) coIndex(w *Event) int {
	for i, id := range x.CO[w.Loc] {
		if id == w.ID {
			return i
		}
	}
	return -1
}

// fr reports from-read: r reads from a write co-before w'.
func (x *Execution) fr(r, w *Event) bool {
	if r.Kind != EvR || w.Kind != EvW || r.Loc != w.Loc {
		return false
	}
	src, ok := x.RF[r.ID]
	if !ok {
		return false
	}
	return x.coIndex(x.Events[src]) < x.coIndex(w)
}

// Executions enumerates every candidate execution of p (all rf choices ×
// all coherence orders), filling read values from rf.
func Executions(p *Program) []*Execution {
	skeleton := buildEvents(p)
	// Writes per location.
	writesAt := map[string][]*Event{}
	var reads []*Event
	for _, e := range skeleton {
		if e.Kind == EvW {
			writesAt[e.Loc] = append(writesAt[e.Loc], e)
		}
		if e.Kind == EvR {
			reads = append(reads, e)
		}
	}
	locs := p.Locs()

	// Enumerate coherence orders per location (init write always first).
	coChoices := make([][][]int, len(locs))
	for i, loc := range locs {
		var initW *Event
		var others []*Event
		for _, w := range writesAt[loc] {
			if w.Tid == -1 {
				initW = w
			} else {
				others = append(others, w)
			}
		}
		perms := permutations(others)
		for _, perm := range perms {
			order := []int{initW.ID}
			for _, w := range perm {
				order = append(order, w.ID)
			}
			coChoices[i] = append(coChoices[i], order)
		}
	}

	// Enumerate rf choices per read.
	rfChoices := make([][]int, len(reads))
	for i, r := range reads {
		for _, w := range writesAt[r.Loc] {
			if w.RMW == r.ID {
				continue // an rmw's own write cannot feed its read
			}
			rfChoices[i] = append(rfChoices[i], w.ID)
		}
	}

	var out []*Execution
	var rec func(ci int, co map[string][]int)
	rec = func(ci int, co map[string][]int) {
		if ci == len(locs) {
			// Now enumerate rf.
			rf := map[int]int{}
			var rrec func(ri int)
			rrec = func(ri int) {
				if ri == len(reads) {
					x := &Execution{RF: map[int]int{}, CO: map[string][]int{}, n: len(skeleton)}
					// Deep copy events so read values are per-execution.
					byID := map[int]*Event{}
					for _, e := range skeleton {
						c := *e
						x.Events = append(x.Events, &c)
						byID[c.ID] = &c
					}
					ok := true
					for k, v := range rf {
						x.RF[k] = v
						byID[k].Val = byID[v].Val
						if byID[k].HasExp && byID[k].Val != byID[k].Exp {
							ok = false
						}
					}
					if !ok {
						return
					}
					for k, v := range co {
						x.CO[k] = append([]int(nil), v...)
					}
					out = append(out, x)
					return
				}
				for _, w := range rfChoices[ri] {
					rf[reads[ri].ID] = w
					rrec(ri + 1)
				}
				delete(rf, reads[ri].ID)
			}
			rrec(0)
			return
		}
		for _, order := range coChoices[ci] {
			co[locs[ci]] = order
			rec(ci+1, co)
		}
	}
	rec(0, map[string][]int{})
	return out
}

func permutations(evs []*Event) [][]*Event {
	if len(evs) == 0 {
		return [][]*Event{nil}
	}
	var out [][]*Event
	for i := range evs {
		rest := make([]*Event, 0, len(evs)-1)
		rest = append(rest, evs[:i]...)
		rest = append(rest, evs[i+1:]...)
		for _, perm := range permutations(rest) {
			out = append(out, append([]*Event{evs[i]}, perm...))
		}
	}
	return out
}

// relation is an n×n boolean adjacency matrix over event IDs.
type relation struct {
	n int
	m []bool
}

func newRel(n int) *relation { return &relation{n: n, m: make([]bool, n*n)} }

func (r *relation) set(a, b int)      { r.m[a*r.n+b] = true }
func (r *relation) has(a, b int) bool { return r.m[a*r.n+b] }
func (r *relation) union(o *relation) {
	for i := range r.m {
		r.m[i] = r.m[i] || o.m[i]
	}
}

// transitiveClosure computes r+ in place (Floyd-Warshall style).
func (r *relation) transitiveClosure() {
	for k := 0; k < r.n; k++ {
		for i := 0; i < r.n; i++ {
			if !r.has(i, k) {
				continue
			}
			for j := 0; j < r.n; j++ {
				if r.has(k, j) {
					r.set(i, j)
				}
			}
		}
	}
}

func (r *relation) irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.has(i, i) {
			return false
		}
	}
	return true
}

// baseRelations builds po|loc ∪ rf ∪ co ∪ fr plus the external subsets used
// by the models.
type rels struct {
	n             int
	events        []*Event
	poR           *relation // full po
	rf, co, fr    *relation
	rfe, coe, fre *relation
	rmw           *relation
}

func (x *Execution) relations() *rels {
	n := x.n
	r := &rels{
		n: n, events: x.Events,
		poR: newRel(n), rf: newRel(n), co: newRel(n), fr: newRel(n),
		rfe: newRel(n), coe: newRel(n), fre: newRel(n), rmw: newRel(n),
	}
	byID := x.Events // events are stored in dense ID order
	for _, a := range x.Events {
		for _, b := range x.Events {
			if a.ID != b.ID && x.po(a, b) {
				r.poR.set(a.ID, b.ID)
			}
		}
	}
	for rID, wID := range x.RF {
		r.rf.set(wID, rID)
		if !x.po(byID[wID], byID[rID]) && !x.po(byID[rID], byID[wID]) {
			r.rfe.set(wID, rID)
		}
	}
	for _, order := range x.CO {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				r.co.set(order[i], order[j])
				a, b := byID[order[i]], byID[order[j]]
				if !x.po(a, b) && !x.po(b, a) {
					r.coe.set(order[i], order[j])
				}
			}
		}
	}
	for _, a := range x.Events {
		if a.Kind != EvR {
			continue
		}
		for _, b := range x.Events {
			if b.Kind == EvW && a.Loc == b.Loc && x.fr(a, b) {
				r.fr.set(a.ID, b.ID)
				if !x.po(a, b) && !x.po(b, a) {
					r.fre.set(a.ID, b.ID)
				}
			}
		}
	}
	for _, e := range x.Events {
		if e.Kind == EvR && e.RMW >= 0 {
			r.rmw.set(e.ID, e.RMW)
		}
	}
	return r
}

// Behavior is the observable result of an execution: the co-maximal value
// per location (the paper's Behav), optionally extended with every read's
// observed value. Reads are keyed "t<tid>.<loc>.<k>" where k is the
// occurrence index of that location's reads within the thread — a keying
// that is stable under the reordering and elimination transformations.
type Behavior struct {
	Finals string
	Reads  map[string]int
}

// Key returns a canonical string for map keys.
func (b Behavior) Key(withReads bool) string {
	if !withReads {
		return b.Finals
	}
	keys := make([]string, 0, len(b.Reads))
	for k := range b.Reads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(b.Finals)
	sb.WriteString("#")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, b.Reads[k])
	}
	return sb.String()
}

// behaviorOf extracts the behavior of a consistent execution.
func (x *Execution) behaviorOf() Behavior {
	byID := x.Events
	var locs []string
	for l := range x.CO {
		locs = append(locs, l)
	}
	sort.Strings(locs)
	var fin []string
	for _, l := range locs {
		order := x.CO[l]
		last := byID[order[len(order)-1]]
		fin = append(fin, fmt.Sprintf("%s=%d", l, last.Val))
	}
	var reads []*Event
	for _, e := range x.Events {
		if e.Kind == EvR {
			reads = append(reads, e)
		}
	}
	sort.Slice(reads, func(i, j int) bool {
		if reads[i].Tid != reads[j].Tid {
			return reads[i].Tid < reads[j].Tid
		}
		return reads[i].Idx < reads[j].Idx
	})
	rd := map[string]int{}
	occ := map[string]int{}
	for _, e := range reads {
		ok := fmt.Sprintf("t%d.%s", e.Tid, e.Loc)
		k := occ[ok]
		occ[ok]++
		rd[fmt.Sprintf("%s.%d", ok, k)] = e.Val
	}
	return Behavior{Finals: strings.Join(fin, ";"), Reads: rd}
}

// Model is a consistency predicate over executions.
type Model struct {
	Name       string
	Consistent func(x *Execution, r *rels) bool
}

// BehaviorsOf returns the behaviors of p's consistent executions under the
// model, keyed canonically.
func BehaviorsOf(p *Program, m Model, withReads bool) map[string]Behavior {
	out := map[string]Behavior{}
	for _, x := range Executions(p) {
		r := x.relations()
		if !scPerLoc(x, r) || !atomicity(x, r) {
			continue
		}
		if !m.Consistent(x, r) {
			continue
		}
		b := x.behaviorOf()
		out[b.Key(withReads)] = b
	}
	return out
}

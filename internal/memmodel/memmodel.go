// Package memmodel implements the axiomatic concurrency machinery of §6–7:
// events, the po/rf/co/fr/rmw relations, the consistency predicates of the
// x86-TSO, Armv8 and LIMM models, exhaustive enumeration of the consistent
// executions of litmus programs, and bounded checkers for the mapping
// correctness theorem (Thm 7.1) and the transformation soundness results
// (Fig. 11a/11b, fence merging). Where the paper proves these statements in
// ~12k lines of Agda, this package verifies them exhaustively over all
// programs up to a size bound — every ✓ in Fig. 11a is confirmed on every
// generated context, and every ✗ is witnessed by a concrete counterexample.
package memmodel

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// OpKind is a litmus operation kind.
type OpKind int

const (
	OpLoad OpKind = iota
	OpStore
	OpRMW // unconditional atomic read-modify-write (reads, then writes Val)
	OpFence
)

// Fence identifies a fence at any level of the translation stack.
type Fence int

const (
	FenceNone Fence = iota
	// x86.
	MFENCE
	// IR (LIMM).
	Frm
	Fww
	Fsc
	// Arm.
	DMBFF
	DMBLD
	DMBST
)

var fenceNames = map[Fence]string{
	MFENCE: "mfence", Frm: "Frm", Fww: "Fww", Fsc: "Fsc",
	DMBFF: "dmb.ff", DMBLD: "dmb.ld", DMBST: "dmb.st",
}

// Op is one instruction of a litmus thread.
type Op struct {
	Kind   OpKind
	Loc    string
	Val    int   // value written (stores, RMW)
	SC     bool  // seq_cst access (LIMM's Rsc/Wsc; x86/Arm accesses ignore it)
	Fence  Fence // for OpFence
	HasExp bool  // RMW with a required read value (the paper's RMW(x,vr,vw))
	Exp    int
	// Acq/Rel mark Arm acquire loads (LDAR) and release stores (STLR),
	// the half-fence accesses of Appendix A.
	Acq bool
	Rel bool
}

// Convenience constructors.
func Ld(loc string) Op          { return Op{Kind: OpLoad, Loc: loc} }
func St(loc string, v int) Op   { return Op{Kind: OpStore, Loc: loc, Val: v} }
func LdSC(loc string) Op        { return Op{Kind: OpLoad, Loc: loc, SC: true} }
func StSC(loc string, v int) Op { return Op{Kind: OpStore, Loc: loc, Val: v, SC: true} }
func RMW(loc string, v int) Op  { return Op{Kind: OpRMW, Loc: loc, Val: v, SC: true} }

// RMWE is an RMW that must read exp (the paper's RMW(x, vr, vw) notation).
func RMWE(loc string, exp, v int) Op {
	return Op{Kind: OpRMW, Loc: loc, Val: v, SC: true, HasExp: true, Exp: exp}
}

// LdA is an Arm acquire load (LDAR) and StR an Arm release store (STLR) —
// the Appendix A half-fence accesses.
func LdA(loc string) Op        { return Op{Kind: OpLoad, Loc: loc, Acq: true} }
func StR(loc string, v int) Op { return Op{Kind: OpStore, Loc: loc, Val: v, Rel: true} }
func Fn(f Fence) Op            { return Op{Kind: OpFence, Fence: f} }

func (o Op) String() string {
	switch o.Kind {
	case OpLoad:
		if o.SC {
			return "Rsc(" + o.Loc + ")"
		}
		return "R(" + o.Loc + ")"
	case OpStore:
		s := fmt.Sprintf("W(%s,%d)", o.Loc, o.Val)
		if o.SC {
			s = "Wsc" + s[1:]
		}
		return s
	case OpRMW:
		if o.HasExp {
			return fmt.Sprintf("RMW(%s,%d,%d)", o.Loc, o.Exp, o.Val)
		}
		return fmt.Sprintf("RMW(%s,%d)", o.Loc, o.Val)
	case OpFence:
		return fenceNames[o.Fence]
	}
	return "?"
}

// Program is a litmus test: initialization writes (default 0) plus threads.
type Program struct {
	Name    string
	Init    map[string]int
	Threads [][]Op

	// locs caches the Locs() result: the bounded checkers enumerate the
	// same program many times and the location universe never changes.
	locs atomic.Pointer[[]string]
}

func (p *Program) String() string {
	var sb strings.Builder
	sb.WriteString(p.Name + ": ")
	for i, t := range p.Threads {
		if i > 0 {
			sb.WriteString(" || ")
		}
		for j, o := range t {
			if j > 0 {
				sb.WriteString("; ")
			}
			sb.WriteString(o.String())
		}
	}
	return sb.String()
}

// Locs returns the sorted set of locations used. The result is computed
// once and cached on the program (enumeration used to re-sort and
// re-allocate it per walk); callers must not mutate the returned slice.
func (p *Program) Locs() []string {
	if c := p.locs.Load(); c != nil {
		return *c
	}
	out := p.appendLocs(nil)
	sort.Strings(out)
	p.locs.Store(&out)
	return out
}

// locsIn is Locs with the result drawn from the arena instead of cached on
// the program. The bounded sweeps construct (or re-point) ephemeral programs
// for every check, so the per-program cache never hits and its allocation
// would dominate; the arena path computes into slab storage and skips
// caching entirely.
func (p *Program) locsIn(a *arena) []string {
	if a == nil {
		return p.Locs()
	}
	if c := p.locs.Load(); c != nil {
		return *c
	}
	n := len(p.Init)
	for _, t := range p.Threads {
		n += len(t)
	}
	out := p.appendLocs(a.strs.take(n)[:0])
	sort.Strings(out)
	return out
}

// appendLocs appends the deduplicated location set to dst.
func (p *Program) appendLocs(dst []string) []string {
	add := func(loc string) {
		for _, l := range dst {
			if l == loc {
				return
			}
		}
		dst = append(dst, loc)
	}
	for l := range p.Init {
		add(l)
	}
	for _, t := range p.Threads {
		for _, o := range t {
			if o.Kind != OpFence {
				add(o.Loc)
			}
		}
	}
	return dst
}

// EvKind classifies events.
type EvKind int

const (
	EvR EvKind = iota
	EvW
	EvF
)

// Event is one execution event (§6.1).
type Event struct {
	ID   int
	Tid  int // -1 for initialization writes
	Idx  int // program order index within the thread
	Kind EvKind
	Loc  string
	Val  int // written value (W) or read value (R, filled per execution)
	SC   bool
	Acq  bool
	Rel  bool
	Fen  Fence
	RMW  int // partner event ID for rmw pairs, else -1
	// HasExp constrains the read value of an expected-value RMW.
	HasExp bool
	Exp    int
}

// Execution is a candidate execution: events plus the rf and co choices.
// The exported RF/CO maps are the stable public view; enumeration walkers
// additionally maintain dense scratch indexes (rfOf, coOrd, coPos) that the
// bitset evaluator reads so the per-candidate path never hashes a map or
// scans a coherence order.
type Execution struct {
	Events []*Event
	RF     map[int]int      // read event ID -> write event ID
	CO     map[string][]int // location -> write event IDs in coherence order
	n      int

	sp    *enumSpace // the enumeration space this execution belongs to (nil for hand-built executions)
	rfOf  []int32    // event ID -> rf source write ID (-1 for non-reads)
	coOrd [][]int    // per location index (sp.locs order): the coherence order
	coPos []int32    // event ID -> position of a write in its location's coherence order
}

// buildEvents lowers a program to its event skeleton (shared across all
// executions). locs is the program's location universe, computed once by the
// caller (it used to be re-derived on every enumeration). A non-nil arena
// supplies the event storage from its slabs.
func buildEvents(p *Program, locs []string, a *arena) []*Event {
	n := len(locs)
	for _, th := range p.Threads {
		for _, o := range th {
			if o.Kind == OpRMW {
				n += 2
			} else {
				n++
			}
		}
	}
	var backing []Event
	var evs []*Event
	if a != nil {
		backing = a.events.take(n)[:0]
		evs = a.evptrs.take(n)[:0]
	} else {
		backing = make([]Event, 0, n) // one allocation for all events
		evs = make([]*Event, 0, n)
	}
	add := func(e Event) *Event {
		e.ID = len(backing)
		backing = append(backing, e)
		ev := &backing[len(backing)-1]
		evs = append(evs, ev)
		return ev
	}
	// Initialization writes.
	for _, loc := range locs {
		add(Event{Tid: -1, Kind: EvW, Loc: loc, Val: p.Init[loc], RMW: -1})
	}
	for tid, th := range p.Threads {
		for idx, o := range th {
			switch o.Kind {
			case OpLoad:
				add(Event{Tid: tid, Idx: idx, Kind: EvR, Loc: o.Loc, SC: o.SC, Acq: o.Acq, RMW: -1})
			case OpStore:
				add(Event{Tid: tid, Idx: idx, Kind: EvW, Loc: o.Loc, Val: o.Val, SC: o.SC, Rel: o.Rel, RMW: -1})
			case OpRMW:
				r := add(Event{Tid: tid, Idx: idx, Kind: EvR, Loc: o.Loc, SC: true, RMW: -1, HasExp: o.HasExp, Exp: o.Exp})
				w := add(Event{Tid: tid, Idx: idx, Kind: EvW, Loc: o.Loc, Val: o.Val, SC: true, RMW: -1})
				r.RMW, w.RMW = w.ID, r.ID
			case OpFence:
				add(Event{Tid: tid, Idx: idx, Kind: EvF, Fen: o.Fence, RMW: -1})
			}
		}
	}
	return evs
}

// poBefore reports program order on skeleton events: same thread, earlier
// index; for rmw pairs the read precedes the write. Initialization writes
// precede everything. It depends only on the skeleton, never on an
// execution's choices.
func poBefore(a, b *Event) bool {
	if a.Tid == -1 && b.Tid != -1 {
		return true
	}
	if a.Tid != b.Tid {
		return false
	}
	if a.Idx != b.Idx {
		return a.Idx < b.Idx
	}
	// Same instruction: rmw read before rmw write.
	return a.Kind == EvR && b.Kind == EvW && a.RMW == b.ID
}

// po reports program order (see poBefore).
func (x *Execution) po(a, b *Event) bool { return poBefore(a, b) }

// coIndex returns the position of a write in its location's coherence
// order, with init first. Enumerated executions answer from the dense coPos
// index maintained by the walker; hand-built executions fall back to the
// linear scan.
func (x *Execution) coIndex(w *Event) int {
	if x.coPos != nil {
		return int(x.coPos[w.ID])
	}
	for i, id := range x.CO[w.Loc] {
		if id == w.ID {
			return i
		}
	}
	return -1
}

// fr reports from-read: r reads from a write co-before w'.
func (x *Execution) fr(r, w *Event) bool {
	if r.Kind != EvR || w.Kind != EvW || r.Loc != w.Loc {
		return false
	}
	src, ok := x.RF[r.ID]
	if !ok {
		return false
	}
	return x.coIndex(x.Events[src]) < x.coIndex(w)
}

// enumSpace is the shared, read-only description of a program's candidate
// execution space: the event skeleton plus the pruned per-location coherence
// orders and per-read rf choices. It is computed once and then walked by one
// or more enumeration workers, each with its own scratch Execution.
type enumSpace struct {
	skeleton  []*Event
	locs      []string
	coChoices [][][]int // per location: the admissible coherence orders
	reads     []*Event  // skeleton read events, in ID order
	rfChoices [][]int   // per read: candidate source write IDs
	// stat holds the skeleton-invariant relations (po, po|loc, the external
	// pair mask, rmw pairs) hoisted out of the per-execution path.
	stat *statics
}

// newEnumSpace lowers p and enumerates the per-location coherence orders
// with pruning: a coherence prefix placing a write co-before a write that
// precedes it in program order already violates SC-per-location (po|loc ∪ co
// has a 2-cycle) for every rf choice, so such permutations are never built.
// Similarly, rf choices that contradict an RMW's expected read value are
// dropped up front.
func newEnumSpace(p *Program) *enumSpace { return newEnumSpaceIn(p, nil) }

// newEnumSpaceIn is newEnumSpace drawing every per-program structure from
// the arena (nil = plain allocation). Counting passes replace the append
// patterns of the original so slices can be taken at their exact size.
func newEnumSpaceIn(p *Program, a *arena) *enumSpace {
	locs := p.locsIn(a)
	var s *enumSpace
	if a != nil {
		s = &a.spaces.take(1)[0]
		a.orders = a.orders[:0]
	} else {
		s = &enumSpace{}
	}
	s.skeleton, s.locs = buildEvents(p, locs, a), locs
	locIdxOf := func(loc string) int {
		for i, l := range s.locs {
			if l == loc {
				return i
			}
		}
		return -1
	}
	// Count writes per location and reads up front so the arena slices are
	// exact.
	nr := 0
	var writeCounts []int
	if a != nil {
		writeCounts = a.ints.take(len(s.locs))
	} else {
		writeCounts = make([]int, len(s.locs))
	}
	for _, e := range s.skeleton {
		if e.Kind == EvW {
			writeCounts[locIdxOf(e.Loc)]++
		}
		if e.Kind == EvR {
			nr++
		}
	}
	var writesAt [][]*Event
	if a != nil {
		writesAt = a.evptrss.take(len(s.locs))
		for i, c := range writeCounts {
			writesAt[i] = a.evptrs.take(c)[:0]
		}
		s.reads = a.evptrs.take(nr)[:0]
	} else {
		writesAt = make([][]*Event, len(s.locs))
		s.reads = make([]*Event, 0, nr)
	}
	for _, e := range s.skeleton {
		if e.Kind == EvW {
			ci := locIdxOf(e.Loc)
			writesAt[ci] = append(writesAt[ci], e)
		}
		if e.Kind == EvR {
			s.reads = append(s.reads, e)
		}
	}

	if a != nil {
		s.coChoices = a.intsss.take(len(s.locs))
	} else {
		s.coChoices = make([][][]int, len(s.locs))
	}
	for i := range s.locs {
		var initW *Event
		var others []*Event
		if a != nil {
			others = a.evptrs.take(len(writesAt[i]))[:0]
		}
		for _, w := range writesAt[i] {
			if w.Tid == -1 {
				initW = w
			} else {
				others = append(others, w)
			}
		}
		// Build permutations of the non-init writes, pruning any prefix that
		// places a write before one of its po-predecessors. Arena mode
		// collects the permutations into a.orders and slices the result out;
		// the backing may be superseded by a later location's growth, but the
		// superseded block keeps the already-written orders valid.
		var order []int
		var used []bool
		if a != nil {
			order = a.ints.take(len(others) + 1)[:1]
			used = a.bools.take(len(others))
		} else {
			order = make([]int, 1, len(others)+1)
			used = make([]bool, len(others))
		}
		order[0] = initW.ID
		start := 0
		if a != nil {
			start = len(a.orders)
		}
		var rec func()
		rec = func() {
			if len(order) == len(others)+1 {
				var perm []int
				if a != nil {
					perm = a.ints.take(len(order))
					copy(perm, order)
					a.orders = append(a.orders, perm)
				} else {
					perm = append([]int(nil), order...)
					s.coChoices[i] = append(s.coChoices[i], perm)
				}
				return
			}
			for k, w := range others {
				if used[k] {
					continue
				}
				// w may be placed next only if every unplaced write is not a
				// po-predecessor of w.
				ok := true
				for k2, w2 := range others {
					if k2 != k && !used[k2] && poBefore(w2, w) {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				used[k] = true
				order = append(order, w.ID)
				rec()
				order = order[:len(order)-1]
				used[k] = false
			}
		}
		rec()
		if a != nil {
			s.coChoices[i] = a.orders[start:len(a.orders):len(a.orders)]
		}
	}

	if a != nil {
		s.rfChoices = a.intss.take(len(s.reads))
	} else {
		s.rfChoices = make([][]int, len(s.reads))
	}
	for i, r := range s.reads {
		rfOK := func(w *Event) bool {
			if w.RMW == r.ID {
				return false // an rmw's own write cannot feed its read
			}
			if r.HasExp && w.Val != r.Exp {
				return false // expected-value RMW: this rf can never satisfy it
			}
			return true
		}
		ws := writesAt[locIdxOf(r.Loc)]
		if a != nil {
			n := 0
			for _, w := range ws {
				if rfOK(w) {
					n++
				}
			}
			s.rfChoices[i] = a.ints.take(n)[:0]
		}
		for _, w := range ws {
			if rfOK(w) {
				s.rfChoices[i] = append(s.rfChoices[i], w.ID)
			}
		}
	}
	s.stat = buildStatics(s.skeleton, s.locs, s.reads, a)
	return s
}

// walker is one enumeration worker's scratch state: a private copy of the
// events (read values are filled in place per rf assignment) and a reusable
// Execution handed to the visit callback.
//
// A dense walker leaves the exported RF/CO maps nil and maintains only the
// dense arrays: the internal behavior folds read nothing else, and skipping
// the two map writes per enumeration node (one of them string-hashed)
// measurably speeds up the bounded checkers. Public Visit* entry points use
// non-dense walkers so callbacks see the documented maps.
type walker struct {
	s      *enumSpace
	events []Event // private event storage (nil for an aliasing walker)
	x      *Execution
	lim    *limiter // nil = unbounded
}

func (s *enumSpace) newWalker(dense bool) *walker {
	w := &walker{s: s, events: make([]Event, len(s.skeleton))}
	evs := make([]*Event, len(s.skeleton))
	for i, e := range s.skeleton {
		w.events[i] = *e
		evs[i] = &w.events[i]
	}
	w.finish(evs, dense, nil)
	return w
}

// newAliasWalker builds a dense walker that mutates the space's skeleton
// events in place instead of copying them. Only valid when this walker is
// the sole user of the space — the single-threaded behavior folds — where it
// saves the per-program event copy.
func (s *enumSpace) newAliasWalker() *walker { return s.newAliasWalkerIn(nil) }

// newAliasWalkerIn is newAliasWalker with the walker scratch drawn from the
// arena.
func (s *enumSpace) newAliasWalkerIn(a *arena) *walker {
	var w *walker
	if a != nil {
		w = &a.walkers.take(1)[0]
	} else {
		w = &walker{}
	}
	w.s = s
	w.finish(s.skeleton, true, a)
	return w
}

func (w *walker) finish(evs []*Event, dense bool, a *arena) {
	s := w.s
	n := len(s.skeleton)
	var idx []int32
	var x *Execution
	var coOrd [][]int
	if a != nil {
		idx = a.int32s.take(2 * n)
		x = &a.execs.take(1)[0]
		coOrd = a.intss.take(len(s.locs))
	} else {
		idx = make([]int32, 2*n) // rfOf and coPos share one backing array
		x = &Execution{}
		coOrd = make([][]int, len(s.locs))
	}
	w.x = x
	*w.x = Execution{
		Events: evs,
		n:      n,
		sp:     s,
		rfOf:   idx[:n:n],
		coOrd:  coOrd,
		coPos:  idx[n:],
	}
	if !dense {
		w.x.RF = make(map[int]int, len(s.reads))
		w.x.CO = make(map[string][]int, len(s.locs))
	}
	for i := range w.x.rfOf {
		w.x.rfOf[i] = -1
	}
}

// walkReads enumerates rf assignments for reads[ri:] on top of the walker's
// current co/rf prefix, calling visit with the scratch Execution at each
// leaf. It returns false when the walker's budget ran out mid-walk; callers
// must stop enumerating.
func (w *walker) walkReads(ri int, visit func(*Execution)) bool {
	if ri == len(w.s.reads) {
		if !w.lim.take() {
			return false
		}
		visit(w.x)
		return true
	}
	r := w.s.reads[ri]
	for _, src := range w.s.rfChoices[ri] {
		if w.x.RF != nil {
			w.x.RF[r.ID] = src
		}
		w.x.rfOf[r.ID] = int32(src)
		w.x.Events[r.ID].Val = w.x.Events[src].Val
		if !w.walkReads(ri+1, visit) {
			return false
		}
	}
	return true
}

// setCo assigns one location's coherence order on the walker's scratch
// execution, updating the exported CO map, the dense per-location order
// table and the coPos index together.
func (w *walker) setCo(ci int, order []int) {
	if w.x.CO != nil {
		w.x.CO[w.s.locs[ci]] = order
	}
	w.x.coOrd[ci] = order
	for p, id := range order {
		w.x.coPos[id] = int32(p)
	}
}

// walkCo enumerates coherence orders for locs[ci:], then descends into rf.
// Like walkReads, false means the budget stopped the walk early.
func (w *walker) walkCo(ci int, visit func(*Execution)) bool {
	if ci == len(w.s.locs) {
		return w.walkReads(0, visit)
	}
	for _, order := range w.s.coChoices[ci] {
		w.setCo(ci, order)
		if !w.walkCo(ci+1, visit) {
			return false
		}
	}
	return true
}

// VisitExecutions streams every candidate execution of p (all rf choices ×
// all admissible coherence orders) to visit, filling read values from rf.
// Coherence orders that contradict po on their location — and rf choices
// that contradict an RMW's expected value — are pruned during construction;
// both could never appear in a consistent execution of any supported model.
//
// The *Execution passed to visit is a scratch value reused between calls:
// visitors must copy anything they retain (see (*Execution).Clone).
//
// For a time- or visit-bounded walk use VisitExecutionsBudget.
func VisitExecutions(p *Program, visit func(*Execution)) {
	VisitExecutionsBudget(p, Budget{}, visit) // unbounded: cannot fail
}

// Clone returns a deep copy of the execution, safe to retain after the
// VisitExecutions callback returns.
func (x *Execution) Clone() *Execution {
	c := &Execution{
		Events: make([]*Event, len(x.Events)),
		RF:     make(map[int]int, len(x.RF)),
		CO:     make(map[string][]int, len(x.CO)),
		n:      x.n,
	}
	for i, e := range x.Events {
		ev := *e
		c.Events[i] = &ev
	}
	if x.RF == nil && x.sp != nil {
		// Dense enumeration scratch: rebuild the exported maps from the
		// dense arrays.
		for _, r := range x.sp.reads {
			if src := x.rfOf[r.ID]; src >= 0 {
				c.RF[r.ID] = int(src)
			}
		}
		for ci, loc := range x.sp.locs {
			c.CO[loc] = append([]int(nil), x.coOrd[ci]...)
		}
	}
	for k, v := range x.RF {
		c.RF[k] = v
	}
	for k, v := range x.CO {
		c.CO[k] = append([]int(nil), v...)
	}
	// The dense scratch indexes are positions/IDs, not pointers into the
	// walker, so value copies keep the clone fully functional; coOrd is
	// rebuilt from the cloned CO slices.
	if x.sp != nil {
		c.sp = x.sp
		c.rfOf = append([]int32(nil), x.rfOf...)
		c.coPos = append([]int32(nil), x.coPos...)
		c.coOrd = make([][]int, len(x.coOrd))
		for i, loc := range x.sp.locs {
			c.coOrd[i] = c.CO[loc]
		}
	}
	return c
}

// Executions materializes every candidate execution of p. It is a thin
// compatibility wrapper over VisitExecutions; enumeration-heavy callers
// should stream instead of materializing.
func Executions(p *Program) []*Execution {
	var out []*Execution
	VisitExecutions(p, func(x *Execution) {
		out = append(out, x.Clone())
	})
	return out
}

// Behavior is the observable result of an execution: the co-maximal value
// per location (the paper's Behav), optionally extended with every read's
// observed value. Reads are keyed "t<tid>.<loc>.<k>" where k is the
// occurrence index of that location's reads within the thread — a keying
// that is stable under the reordering and elimination transformations.
type Behavior struct {
	Finals string
	Reads  map[string]int
}

// Key returns a canonical string for map keys.
func (b Behavior) Key(withReads bool) string {
	if !withReads {
		return b.Finals
	}
	keys := make([]string, 0, len(b.Reads))
	for k := range b.Reads {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	sb.WriteString(b.Finals)
	sb.WriteString("#")
	for _, k := range keys {
		fmt.Fprintf(&sb, "%s=%d;", k, b.Reads[k])
	}
	return sb.String()
}

// behaviorOf extracts the behavior of a consistent execution. Enumerated
// executions use the precomputed location order and read slot keys of their
// enumeration space (no re-sorting, no per-read key formatting); hand-built
// executions fall back to the reference extraction.
func (x *Execution) behaviorOf() Behavior {
	if x.sp == nil {
		return x.referenceBehavior()
	}
	k := x.sp.stat
	var sb strings.Builder
	for ci, l := range k.locs {
		if ci > 0 {
			sb.WriteString(";")
		}
		order := x.coOrd[ci]
		fmt.Fprintf(&sb, "%s=%d", l, x.Events[order[len(order)-1]].Val)
	}
	rd := make(map[string]int, len(k.reads))
	for si, r := range k.reads {
		rd[k.readKeys[si]] = x.Events[r.ID].Val
	}
	return Behavior{Finals: sb.String(), Reads: rd}
}

// referenceBehavior is the original behavior extraction, kept for executions
// that were not produced by an enumeration walker (and as the oracle the
// differential test compares the fast path against).
func (x *Execution) referenceBehavior() Behavior {
	byID := x.Events
	var locs []string
	for l := range x.CO {
		locs = append(locs, l)
	}
	sort.Strings(locs)
	var fin []string
	for _, l := range locs {
		order := x.CO[l]
		last := byID[order[len(order)-1]]
		fin = append(fin, fmt.Sprintf("%s=%d", l, last.Val))
	}
	var reads []*Event
	for _, e := range x.Events {
		if e.Kind == EvR {
			reads = append(reads, e)
		}
	}
	sort.Slice(reads, func(i, j int) bool {
		if reads[i].Tid != reads[j].Tid {
			return reads[i].Tid < reads[j].Tid
		}
		return reads[i].Idx < reads[j].Idx
	})
	rd := map[string]int{}
	occ := map[string]int{}
	for _, e := range reads {
		ok := fmt.Sprintf("t%d.%s", e.Tid, e.Loc)
		k := occ[ok]
		occ[ok]++
		rd[fmt.Sprintf("%s.%d", ok, k)] = e.Val
	}
	return Behavior{Finals: strings.Join(fin, ";"), Reads: rd}
}

// BehaviorsOf returns the behaviors of p's consistent executions under the
// model, keyed canonically. Executions are streamed, never materialized: the
// relation buffer is reused across candidates, so the peak footprint is one
// execution regardless of how many candidates the program has.
func BehaviorsOf(p *Program, m Model, withReads bool) map[string]Behavior {
	out, _ := BehaviorsOfBudget(p, m, withReads, Budget{}) // unbounded: cannot fail
	return out
}

package memmodel

import (
	"fmt"
	"strings"
	"sync"
)

// Cat is one row/column category of the Fig. 11a reordering table.
type Cat int

const (
	CatRna Cat = iota
	CatWna
	CatRsc // a failed RMWsc: a standalone seq_cst read
	CatRMW // a successful RMWsc: the Rsc·Wsc pair
	CatFrm
	CatFww
	CatFsc
	NumCats
)

var catNames = [NumCats]string{"Rna", "Wna", "Rsc", "Rsc·Wsc", "Frm", "Fww", "Fsc"}

func (c Cat) String() string { return catNames[c] }

// IsFence reports whether the category is a fence.
func (c Cat) IsFence() bool { return c >= CatFrm }

// inst instantiates a category on a location (fences ignore it).
func (c Cat) inst(loc string, val int) Op {
	switch c {
	case CatRna:
		return Ld(loc)
	case CatWna:
		return St(loc, val)
	case CatRsc:
		return LdSC(loc)
	case CatRMW:
		return RMW(loc, val)
	case CatFrm:
		return Fn(Frm)
	case CatFww:
		return Fn(Fww)
	case CatFsc:
		return Fn(Fsc)
	}
	panic("bad category")
}

// Verdict is one cell of the reordering table.
type Verdict int

const (
	Unsafe Verdict = iota // ✗
	Safe                  // ✓
	Equal                 // = (identical fences: reordering is the identity)
)

func (v Verdict) String() string {
	switch v {
	case Safe:
		return "✓"
	case Unsafe:
		return "✗"
	}
	return "="
}

// contexts enumerates observer threads used by the bounded transformation
// checker: single accesses, access pairs and fence-separated access pairs
// over the two locations touched by the transformed thread. The set is
// static, so it is built once and shared (callers must not mutate it).
func contexts() [][]Op {
	ctxOnce.Do(func() { ctxCache = buildContexts() })
	return ctxCache
}

var (
	ctxOnce  sync.Once
	ctxCache [][]Op
)

func buildContexts() [][]Op {
	accesses := []Op{
		Ld("X"), Ld("Y"),
		St("X", 2), St("Y", 2),
		RMW("X", 3), RMW("Y", 3),
	}
	seps := []Op{{Kind: OpFence, Fence: FenceNone}, Fn(Frm), Fn(Fww), Fn(Fsc)}
	var out [][]Op
	for _, a := range accesses {
		out = append(out, []Op{a})
	}
	for _, a := range accesses {
		for _, b := range accesses {
			for _, s := range seps {
				if s.Fence == FenceNone {
					out = append(out, []Op{a, b})
				} else {
					out = append(out, []Op{a, s, b})
				}
			}
		}
	}
	return out
}

// inclusion checks Behav(tgt) ⊆ Behav(src) under the model (with reads).
// The transformed programs share their access layout with the originals, so
// the check normally compares interned behavior keys; a witness string is
// materialized only for a failing cell.
func inclusion(src, tgt *Program, m Model) (string, bool) {
	sc := checkScratchPool.Get().(*CheckScratch)
	defer checkScratchPool.Put(sc)
	return inclusionScratch(src, tgt, m, sc)
}

// inclusionScratch is inclusion with all per-check scratch drawn from sc.
// One arena reset cycle covers both folds: the two behavior sets stay alive
// together until compared, per the arena's lifetime contract.
func inclusionScratch(src, tgt *Program, m Model, sc *CheckScratch) (string, bool) {
	sc.a.reset()
	srcS, _ := foldBehaviorsArena(src, m, true, 1, Budget{}, &sc.a) // unbounded: cannot fail
	tgtS, _ := foldBehaviorsArena(tgt, m, true, 1, Budget{}, &sc.a)
	if srcS.comparable(tgtS) {
		for key := range tgtS.interned {
			if _, ok := srcS.interned[key]; !ok {
				return tgtS.keyString(key), false
			}
		}
		return "", true
	}
	srcB, tgtB := srcS.result(), tgtS.result()
	for k := range tgtB {
		if _, ok := srcB[k]; !ok {
			return k, false
		}
	}
	return "", true
}

// reorderScratch bundles everything one bounded-transformation worker
// reuses across checks: the enumeration scratch plus source/target program
// shells and thread buffers, so steady-state cell checking allocates
// nothing per context.
type reorderScratch struct {
	sc         CheckScratch
	src, tgt   Program
	srcThreads [2][]Op
	tgtThreads [2][]Op
	t0src      []Op
	t0tgt      []Op
}

var reorderScratchPool = sync.Pool{New: func() any { return &reorderScratch{} }}

// point re-aims the reusable program shells at the given thread-0 ops and
// observer context, invalidating the location cache left by the previous
// check (the shells are mutated in place, so the cache would be stale).
func (rs *reorderScratch) point(t0src, t0tgt, ctx []Op) (src, tgt *Program) {
	rs.src.Name, rs.tgt.Name = "reorder-src", "reorder-tgt"
	rs.srcThreads = [2][]Op{t0src, ctx}
	rs.tgtThreads = [2][]Op{t0tgt, ctx}
	rs.src.Threads = rs.srcThreads[:]
	rs.tgt.Threads = rs.tgtThreads[:]
	rs.src.locs.Store(nil)
	rs.tgt.locs.Store(nil)
	return &rs.src, &rs.tgt
}

// wrapInto is wrapOps for the fixed two-op patterns, writing into dst's
// storage instead of allocating.
func wrapInto(dst []Op, pre, post, a, b Op) []Op {
	dst = dst[:0]
	if realOp(pre) {
		dst = append(dst, pre)
	}
	dst = append(dst, a, b)
	if realOp(post) {
		dst = append(dst, post)
	}
	return dst
}

// neighborOps are the same-thread instructions wrapped around a transformed
// pattern. A fence's ordering effect is only observable relative to other
// accesses of its own thread, so the checker surrounds the pattern with
// every prefix/suffix choice on the location Y (kept distinct from the
// pattern's primary location X).
var neighborOps = []Op{{Kind: OpFence, Fence: FenceNone}, Ld("Y"), St("Y", 5)}

// CheckReorder decides one Fig. 11a cell by bounded exhaustive search:
// thread0 executes prefix·a(X)·b(Y)·suffix in the source and the pair
// swapped in the target, against every generated observer context. It
// returns Safe and an empty witness, or Unsafe with a counterexample (the
// same one the serial search would find first).
func CheckReorder(a, b Cat) (Verdict, string) {
	return checkReorder(a, b, DefaultParallelism)
}

func checkReorder(a, b Cat, workers int) (Verdict, string) {
	if a.IsFence() && b.IsFence() && a == b {
		return Equal, ""
	}
	// Accesses take locations X then Y in order of appearance; the
	// neighbour ops occupy Y, so a lone access in a fence-access pair goes
	// on X to stay independent of its neighbours.
	locA, locB := "X", "Y"
	if a.IsFence() {
		locB = "X"
	}
	opA := a.inst(locA, 1)
	opB := b.inst(locB, 1)
	ctxs := contexts()
	nc := len(ctxs)
	n := len(neighborOps) * len(neighborOps) * nc
	err := firstFailure(n, workers, func(i int) error {
		pre := neighborOps[i/(len(neighborOps)*nc)]
		post := neighborOps[(i/nc)%len(neighborOps)]
		ctx := ctxs[i%nc]
		rs := reorderScratchPool.Get().(*reorderScratch)
		defer reorderScratchPool.Put(rs)
		rs.t0src = wrapInto(rs.t0src, pre, post, opA, opB)
		rs.t0tgt = wrapInto(rs.t0tgt, pre, post, opB, opA)
		src, tgt := rs.point(rs.t0src, rs.t0tgt, ctx)
		if witness, ok := inclusionScratch(src, tgt, LIMM, &rs.sc); !ok {
			return fmt.Errorf("pre=%v post=%v context %v admits %s", pre, post, ctx, witness)
		}
		return nil
	})
	if err != nil {
		return Unsafe, err.Error()
	}
	return Safe, ""
}

// realOp reports whether o is an actual instruction (FenceNone is the "no
// neighbour / no separator" placeholder).
func realOp(o Op) bool { return !(o.Kind == OpFence && o.Fence == FenceNone) }

// wrapOps surrounds mid with the optional pre/post neighbour ops.
func wrapOps(pre, post Op, mid ...Op) []Op {
	t := make([]Op, 0, len(mid)+2)
	if realOp(pre) {
		t = append(t, pre)
	}
	t = append(t, mid...)
	if realOp(post) {
		t = append(t, post)
	}
	return t
}

// ReorderTable computes the full Fig. 11a table, checking the 49 cells
// across DefaultParallelism workers. Each cell's verdict is independent, so
// the table is identical to ReorderTableSerial.
func ReorderTable() [NumCats][NumCats]Verdict {
	var t [NumCats][NumCats]Verdict
	n := int(NumCats) * int(NumCats)
	parallelFor(n, DefaultParallelism, func(i int) {
		a, b := Cat(i/int(NumCats)), Cat(i%int(NumCats))
		v, _ := checkReorder(a, b, 1)
		t[a][b] = v
	})
	return t
}

// ReorderTableSerial computes the Fig. 11a table on a single goroutine.
func ReorderTableSerial() [NumCats][NumCats]Verdict {
	var t [NumCats][NumCats]Verdict
	for a := Cat(0); a < NumCats; a++ {
		for b := Cat(0); b < NumCats; b++ {
			v, _ := checkReorder(a, b, 1)
			t[a][b] = v
		}
	}
	return t
}

// PaperReorderTable is Fig. 11a as printed in the paper (row a, column b
// for the reordering a·b ↝ b·a).
func PaperReorderTable() [NumCats][NumCats]Verdict {
	o, x, e := Safe, Unsafe, Equal
	return [NumCats][NumCats]Verdict{
		//            Rna Wna Rsc RMW Frm Fww Fsc
		/* Rna     */ {o, o, o, x, x, o, x},
		/* Wna     */ {o, o, o, x, o, x, x},
		/* Rsc     */ {x, x, x, x, o, o, o},
		/* Rsc·Wsc */ {x, x, x, x, o, o, o},
		/* Frm     */ {x, x, x, o, e, o, o},
		/* Fww     */ {o, x, o, o, o, e, o},
		/* Fsc     */ {x, x, x, o, o, o, e},
	}
}

// FormatTable renders a verdict table like Fig. 11a.
func FormatTable(t [NumCats][NumCats]Verdict) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-9s", "a\\b")
	for b := Cat(0); b < NumCats; b++ {
		fmt.Fprintf(&sb, "%-9s", b)
	}
	sb.WriteString("\n")
	for a := Cat(0); a < NumCats; a++ {
		fmt.Fprintf(&sb, "%-9s", a)
		for b := Cat(0); b < NumCats; b++ {
			fmt.Fprintf(&sb, "%-9s", t[a][b])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// Elim identifies one Fig. 11b elimination rule.
type Elim int

const (
	ElimRAR Elim = iota
	ElimRAW
	ElimWAW
	ElimFRAR // across Fo, o ∈ {rm, ww}
	ElimFRAW // across Fτ, τ ∈ {sc, ww}
	ElimFWAW // across Fo, o ∈ {rm, ww}
)

// CheckElimination verifies one elimination rule instance with the given
// intervening fence (FenceNone for the adjacent rules). It returns an error
// carrying a counterexample if the elimination admits new behavior.
//
// withReads selects the observation model. The paper's Theorem 7.5 compares
// Behav — final memory values only — which is what the Agda proofs
// establish; that is withReads=false. With withReads=true every load's
// value is additionally observable (as if each read flowed into a distinct
// final location). Under that stronger model the bounded checker finds
// genuine counterexamples even for some fenced eliminations the paper
// lists as safe (e.g. F-WAW across Fww: eliminating W(X,v) from
// W(X,v)·Fww·W(X,v') removes the write that anchored a message-passing
// ordering to a later write, which a reader of X can observe). This is a
// real difference between the two observation models, not a model bug —
// see the TestFig11bStrongObservation test.
func CheckElimination(rule Elim, fence Fence, withReads bool) error {
	var src, tgt []Op
	// The source thread pattern on location X; the eliminated access is
	// constrained to observe the retained one per Fig. 11b.
	mid := func() []Op {
		if fence == FenceNone {
			return nil
		}
		return []Op{Fn(fence)}
	}
	// The eliminated access's own observation disappears from the target:
	// its uses are rewritten to the retained value (RAR/RAW), so in the
	// source execution its read may resolve freely.
	dropKey := ""
	drop := func(b Behavior) Behavior {
		if dropKey == "" {
			return b
		}
		nb := Behavior{Finals: b.Finals, Reads: map[string]int{}}
		for k, v := range b.Reads {
			if k != dropKey {
				nb.Reads[k] = v
			}
		}
		return nb
	}
	switch rule {
	case ElimRAR, ElimFRAR:
		src = append(append([]Op{Ld("X")}, mid()...), Ld("X"))
		tgt = append([]Op{Ld("X")}, mid()...)
		dropKey = "t0.X.1"
	case ElimRAW, ElimFRAW:
		src = append(append([]Op{St("X", 1)}, mid()...), Ld("X"))
		tgt = append([]Op{St("X", 1)}, mid()...)
		dropKey = "t0.X.0"
	case ElimWAW, ElimFWAW:
		src = append(append([]Op{St("X", 1)}, mid()...), St("X", 2))
		if fence == FenceNone {
			tgt = []Op{St("X", 2)}
		} else {
			tgt = []Op{Fn(fence), St("X", 2)}
		}
	}

	ctxs := contexts()
	nc := len(ctxs)
	n := len(neighborOps) * len(neighborOps) * nc
	return firstFailure(n, DefaultParallelism, func(i int) error {
		pre := neighborOps[i/(len(neighborOps)*nc)]
		post := neighborOps[(i/nc)%len(neighborOps)]
		ctx := ctxs[i%nc]
		srcP := &Program{Name: "elim-src", Threads: [][]Op{wrapOps(pre, post, src...), ctx}}
		tgtP := &Program{Name: "elim-tgt", Threads: [][]Op{wrapOps(pre, post, tgt...), ctx}}
		srcB := BehaviorsOf(srcP, LIMM, withReads)
		tgtB := BehaviorsOf(tgtP, LIMM, withReads)
		projected := map[string]bool{}
		for _, b := range srcB {
			projected[drop(b).Key(withReads)] = true
		}
		for k := range tgtB {
			if !projected[k] {
				return fmt.Errorf("elimination rule %d with fence %v: pre=%v post=%v context %v admits %s",
					rule, fence, pre, post, ctx, k)
			}
		}
		return nil
	})
}

// CheckFenceMerge verifies that replacing the fence pair (f1; f2) with the
// single fence merged preserves behaviors (the §7.2 merging rules).
func CheckFenceMerge(f1, f2, merged Fence) error {
	surround := []Op{Ld("X"), St("X", 1), Ld("Y"), St("Y", 1)}
	for _, before := range surround {
		for _, after := range surround {
			src := &Program{Name: "merge-src", Threads: [][]Op{
				{before, Fn(f1), Fn(f2), after},
				{St("X", 2), Fn(Fsc), Ld("Y")},
			}}
			tgt := &Program{Name: "merge-tgt", Threads: [][]Op{
				{before, Fn(merged), after},
				{St("X", 2), Fn(Fsc), Ld("Y")},
			}}
			if w, ok := inclusion(src, tgt, LIMM); !ok {
				return fmt.Errorf("merging %v;%v -> %v admits %s", f1, f2, merged, w)
			}
		}
	}
	return nil
}

// CheckLoadIntroduction verifies speculative load introduction (§7.2): the
// target executes an extra unused load that the source lacks.
func CheckLoadIntroduction() error {
	ctxs := contexts()
	return firstFailure(len(ctxs), DefaultParallelism, func(i int) error {
		ctx := ctxs[i]
		// X is initialized in both programs so the final-state location
		// universe matches even when the context never touches X.
		init := map[string]int{"X": 0, "Y": 0}
		src := &Program{Name: "spec-src", Init: init, Threads: [][]Op{{St("Y", 1)}, ctx}}
		tgt := &Program{Name: "spec-tgt", Init: init, Threads: [][]Op{{Ld("X"), St("Y", 1)}, ctx}}
		srcB := BehaviorsOf(src, LIMM, true)
		tgtB := BehaviorsOf(tgt, LIMM, true)
		for _, b := range tgtB {
			// Drop the introduced load's observation: its value is unused.
			nb := Behavior{Finals: b.Finals, Reads: map[string]int{}}
			for k, v := range b.Reads {
				if k != "t0.X.0" {
					nb.Reads[k] = v
				}
			}
			if _, ok := srcB[nb.Key(true)]; !ok {
				return fmt.Errorf("speculative load introduction: context %v admits %s", ctx, nb.Key(true))
			}
		}
		return nil
	})
}

package memmodel

import (
	"testing"
)

// benchSerial pins the checkers to a single worker so the benchmarks measure
// the checking core itself, not the worker pool.
func benchSerial(b *testing.B) func() {
	b.Helper()
	old := DefaultParallelism
	DefaultParallelism = 1
	return func() { DefaultParallelism = old }
}

// BenchmarkCheckMappingExhaustive measures the Thm 7.1 bounded mapping
// checker on a deterministic sample of the maxOps=2 generated program family
// (the `cmd/litmus -exhaustive 2` workload). One op = one full
// x86→IR→Arm CheckMapping on one generated program.
func BenchmarkCheckMappingExhaustive(b *testing.B) {
	defer benchSerial(b)()
	progs := GenerateX86Programs(2)
	var sel []*Program
	for i := 0; i < len(progs); i += 37 {
		sel = append(sel, progs[i])
	}
	comp := func(q *Program) *Program { return MapIRToArm(MapX86ToIR(q)) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range sel {
			if err := CheckMapping(p, X86, comp, Arm); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// fig11aBenchCells is a deterministic sample of Fig. 11a cells covering safe,
// unsafe and fence rows (the expensive part of each cell is identical — the
// bounded context sweep; the sample keeps one benchmark iteration tractable).
var fig11aBenchCells = []struct{ a, b Cat }{
	{CatRna, CatWna},
	{CatRna, CatRMW},
	{CatWna, CatFrm},
	{CatRsc, CatFww},
	{CatFrm, CatRMW},
	{CatFww, CatRna},
	{CatFsc, CatRna},
}

// BenchmarkFig11aTable measures the Fig. 11a reorder checker: one op is one
// serial pass over the sampled cells (each cell sweeps every generated
// observer context, exactly as ReorderTableSerial does per cell).
func BenchmarkFig11aTable(b *testing.B) {
	defer benchSerial(b)()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range fig11aBenchCells {
			checkReorder(c.a, c.b, 1)
		}
	}
}

// BenchmarkBehaviorsOfIRIW measures the streamed behavior fold on IRIW under
// the Arm model — the per-candidate consistency-check path with its
// surrounding enumeration.
func BenchmarkBehaviorsOfIRIW(b *testing.B) {
	p := &Program{Name: "IRIW", Threads: [][]Op{
		{St("X", 1)},
		{St("Y", 1)},
		{Ld("X"), Ld("Y")},
		{Ld("Y"), Ld("X")},
	}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(BehaviorsOf(p, Arm, true)) == 0 {
			b.Fatal("no behaviors")
		}
	}
}

// BenchmarkSteadyStateVisit isolates the per-execution visit path — walk,
// consistency check, behavior fold — with the per-program setup hoisted out
// of the loop. This is the path the walker arena contract promises is
// allocation-free; -benchmem must report 0 allocs/op.
func BenchmarkSteadyStateVisit(b *testing.B) {
	p := &Program{Name: "IRIW", Threads: [][]Op{
		{St("X", 1)},
		{St("Y", 1)},
		{Ld("X"), Ld("Y")},
		{Ld("Y"), Ld("X")},
	}}
	s := newEnumSpace(p)
	w := s.newAliasWalker()
	ev := newEvaluator(s, Arm)
	acc := newBehaviorSet(s.stat, true)
	visit := func(x *Execution) {
		if ev.consistent(x) {
			acc.add(x)
		}
	}
	w.walkCo(0, visit) // warm the interning maps
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.walkCo(0, visit)
	}
}

package memmodel

import (
	"fmt"
	"math/rand"
	"testing"
)

// referenceBehaviors folds behaviors the pre-bitset way: enumerate with the
// public (map-maintaining) walker, materialize the map/[]bool relations,
// evaluate the retained reference consistency predicates, and extract
// behaviors with the reference extraction. It shares no code with the bitset
// evaluator, the interned behavior sets, or the hoisted statics.
func referenceBehaviors(p *Program, m Model, withReads bool) map[string]bool {
	out := map[string]bool{}
	var buf *rels
	VisitExecutions(p, func(x *Execution) {
		r := x.relationsInto(buf)
		buf = r
		if refScPerLoc(x, r) && refAtomicity(x, r) && referenceConsistent(m, x, r) {
			out[x.referenceBehavior().Key(withReads)] = true
		}
	})
	return out
}

// genRandomProgram draws a random litmus program from one of four op-pool
// variants: plain accesses, accesses+fences, accesses+RMWs, or the full mix
// (SC accesses, half-fence accesses, expected-value RMWs, fences of every
// architecture level). Deterministic in rng.
func genRandomProgram(rng *rand.Rand, variant int, name string) *Program {
	locs := []string{"X", "Y"}
	loc := func() string { return locs[rng.Intn(len(locs))] }
	val := func() int { return 1 + rng.Intn(3) }
	plain := []func() Op{
		func() Op { return Ld(loc()) },
		func() Op { return St(loc(), val()) },
	}
	fences := []func() Op{
		func() Op { return Fn(MFENCE) },
		func() Op { return Fn(Frm) },
		func() Op { return Fn(Fww) },
		func() Op { return Fn(Fsc) },
		func() Op { return Fn(DMBFF) },
		func() Op { return Fn(DMBLD) },
		func() Op { return Fn(DMBST) },
	}
	rmws := []func() Op{
		func() Op { return RMW(loc(), val()) },
		func() Op { return RMWE(loc(), rng.Intn(2), val()) },
	}
	full := []func() Op{
		func() Op { return LdSC(loc()) },
		func() Op { return StSC(loc(), val()) },
		func() Op { return LdA(loc()) },
		func() Op { return StR(loc(), val()) },
	}
	var pool []func() Op
	switch variant % 4 {
	case 0:
		pool = plain
	case 1:
		pool = append(append([]func() Op{}, plain...), fences...)
	case 2:
		pool = append(append([]func() Op{}, plain...), rmws...)
	default:
		pool = append(append(append(append([]func() Op{}, plain...), fences...), rmws...), full...)
	}
	p := &Program{Name: name}
	nThreads := 2 + rng.Intn(2)
	for t := 0; t < nThreads; t++ {
		var th []Op
		for len(th) == 0 { // no empty threads
			nOps := 1 + rng.Intn(3)
			for i := 0; i < nOps; i++ {
				th = append(th, pool[rng.Intn(len(pool))]())
			}
		}
		p.Threads = append(p.Threads, th)
	}
	return p
}

// TestBitsetEngineMatchesReference is the differential oracle for the bitset
// checking core: over a seeded stream of randomized litmus programs — with
// and without fences, RMWs and SC/half-fence accesses — the production
// BehaviorsOf (hoisted statics, packed relations, interned keys) must
// produce exactly the behavior sets of the retained reference engine, under
// all four models and both observation modes.
func TestBitsetEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(0x1a5a97e))
	models := []Model{SC, X86, Arm, LIMM}
	const programs = 80
	for i := 0; i < programs; i++ {
		p := genRandomProgram(rng, i, fmt.Sprintf("rand_%d", i))
		for _, m := range models {
			for _, withReads := range []bool{true, false} {
				want := referenceBehaviors(p, m, withReads)
				got := BehaviorsOf(p, m, withReads)
				if len(got) != len(want) {
					t.Fatalf("%s under %s (withReads=%v): bitset engine found %d behaviors, reference %d\nprogram: %s",
						p.Name, m.Name, withReads, len(got), len(want), p)
				}
				for k := range got {
					if !want[k] {
						t.Fatalf("%s under %s (withReads=%v): bitset-only behavior %s\nprogram: %s",
							p.Name, m.Name, withReads, k, p)
					}
				}
			}
		}
	}
}

// TestBitsetEngineMatchesReferenceParallel spot-checks the parallel fold
// against the reference on a smaller seeded stream.
func TestBitsetEngineMatchesReferenceParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1ff))
	for i := 0; i < 12; i++ {
		p := genRandomProgram(rng, i, fmt.Sprintf("randpar_%d", i))
		for _, m := range []Model{SC, X86, Arm, LIMM} {
			want := referenceBehaviors(p, m, true)
			got := BehaviorsOfParallel(p, m, true, 4)
			if len(got) != len(want) {
				t.Fatalf("%s under %s: parallel fold found %d behaviors, reference %d\nprogram: %s",
					p.Name, m.Name, len(got), len(want), p)
			}
			for k := range got {
				if !want[k] {
					t.Fatalf("%s under %s: parallel-only behavior %s\nprogram: %s", p.Name, m.Name, k, p)
				}
			}
		}
	}
}

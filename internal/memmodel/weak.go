package memmodel

import "fmt"

// This file models the weaker-than-DMB lowering implemented by
// internal/fences: the strengthening pass (ld;Frm -> LDAR, Fww;st -> STLR)
// and the escape-analysis fence elimination (accesses proven thread-local
// get no fences at all). Each rule is stated as a litmus-level program
// mapping so CheckMapping can verify it exhaustively against the models.

// StrengthenIR rewrites an IR (LIMM) program with the same window scan as
// fences.StrengthenFunc: an Frm whose backward window (up to the previous
// Frm/Fsc/RMWsc or thread start) contains exactly one plain load is
// deleted and that load becomes an acquire load; an Fww whose forward
// window contains exactly one plain store is deleted and that store
// becomes a release store.
//
// The window conditions are what make this sound without any assumption on
// the input program (the compiler gets them for free from the placement
// invariant, but the fence merger may feed us arbitrary shapes):
//
//   - Frm orders every earlier read before every later access. Deleting it
//     loses those edges for all in-window reads except the converted one,
//     so any other plain read in the window aborts the rewrite. Acquire
//     loads are skipped: [A];po already orders them against everything
//     later. Writes are skipped: Frm never ordered them. A previous
//     Frm/Fsc/RMWsc bounds the window because reads before it stay ordered
//     through it.
//   - Dually for Fww over writes: release stores are skipped (po;[L]
//     orders all earlier accesses before them), reads are skipped (Fww
//     never orders reads), a second plain store aborts.
//   - SC accesses abort the scan, mirroring the compiler's conservatism
//     around RMW/cmpxchg lowering.
func StrengthenIR(p *Program) *Program {
	out := &Program{Name: p.Name + "+acqrel", Init: p.Init}
	for _, th := range p.Threads {
		t := append([]Op(nil), th...)
		t = strengthenAcquires(t)
		t = strengthenReleases(t)
		out.Threads = append(out.Threads, t)
	}
	return out
}

func strengthenAcquires(t []Op) []Op {
	for i := 0; i < len(t); i++ {
		if t[i].Kind != OpFence || t[i].Fence != Frm {
			continue
		}
		cand := -1
		ok := true
	scan:
		for j := i - 1; j >= 0; j-- {
			o := t[j]
			switch o.Kind {
			case OpFence:
				if o.Fence == Frm || o.Fence == Fsc {
					break scan // reads before it remain covered
				}
				// Fww: no read ordering; keep scanning.
			case OpRMW:
				break scan // RMWsc is a full fence
			case OpLoad:
				switch {
				case o.Acq:
					// already self-ordered against everything later
				case o.SC:
					ok = false
					break scan
				case cand >= 0:
					ok = false // second uncovered read would lose its edges
					break scan
				default:
					cand = j
				}
			case OpStore:
				if o.SC {
					ok = false
					break scan
				}
				// Frm never ordered stores; skip.
			}
		}
		if ok && cand >= 0 {
			t[cand] = LdA(t[cand].Loc)
			t = append(t[:i], t[i+1:]...)
			i--
		}
	}
	return t
}

func strengthenReleases(t []Op) []Op {
	for i := 0; i < len(t); i++ {
		if t[i].Kind != OpFence || t[i].Fence != Fww {
			continue
		}
		cand := -1
		ok := true
	scan:
		for j := i + 1; j < len(t); j++ {
			o := t[j]
			switch o.Kind {
			case OpFence:
				if o.Fence == Fww || o.Fence == Fsc {
					break scan // writes beyond it remain covered
				}
				// Frm: no write-write ordering; keep scanning.
			case OpRMW:
				break scan
			case OpStore:
				switch {
				case o.Rel:
					// po;[L] already orders all earlier accesses before it
				case o.SC:
					ok = false
					break scan
				case cand >= 0:
					ok = false
					break scan
				default:
					cand = j
				}
			case OpLoad:
				if o.SC {
					ok = false
					break scan
				}
				// Fww never ordered reads; skip.
			}
		}
		if ok && cand >= 0 {
			t[cand] = StR(t[cand].Loc, t[cand].Val)
			t = append(t[:i], t[i+1:]...)
			i--
		}
	}
	return t
}

// MapIRToArmWeak applies the Fig. 8b mapping after the strengthening
// rewrite: surviving Frm/Fww/Fsc lower to DMB LD/ST/FF as in MapIRToArm,
// and acquire loads / release stores pass through to LDAR/STLR events
// (Op.Acq/Op.Rel on the Arm side).
func MapIRToArmWeak(p *Program) *Program {
	s := StrengthenIR(p)
	out := &Program{Name: p.Name + "→Arm(weak)", Init: p.Init}
	for _, th := range s.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad, OpStore:
				t = append(t, o) // Acq/Rel flags carry over to LDAR/STLR
			case OpRMW:
				t = append(t, Fn(DMBFF), o, Fn(DMBFF))
			case OpFence:
				switch o.Fence {
				case Frm:
					t = append(t, Fn(DMBLD))
				case Fww:
					t = append(t, Fn(DMBST))
				default:
					t = append(t, Fn(DMBFF))
				}
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// PrivateLocs returns the set of locations accessed by at most one thread
// of p. This is the litmus-level analogue of what the escape analysis
// proves about an allocation or non-address-taken global: no other thread
// can reach it.
func PrivateLocs(p *Program) map[string]bool {
	owner := map[string]int{}
	for tid, th := range p.Threads {
		for _, o := range th {
			if o.Kind == OpFence {
				continue
			}
			if prev, ok := owner[o.Loc]; ok && prev != tid {
				owner[o.Loc] = -1 // shared
			} else if !ok {
				owner[o.Loc] = tid
			}
		}
	}
	private := map[string]bool{}
	for loc, tid := range owner {
		if tid >= 0 {
			private[loc] = true
		}
	}
	return private
}

// MapX86ToIRElide applies the Fig. 8a mapping but skips fence insertion
// for accesses to locations in private — modeling the escape-analysis
// elimination (fences.Options.UseEscape): loads and stores the analysis
// proves thread-local are placed with no Frm/Fww at all. Shared accesses
// keep their fences, so inter-thread ordering on shared locations is
// untouched; private accesses need no ordering because no other thread
// observes them (po-loc coherence pins their values).
func MapX86ToIRElide(p *Program, private map[string]bool) *Program {
	out := &Program{Name: p.Name + "→IR(elide)", Init: p.Init}
	for _, th := range p.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad:
				t = append(t, Ld(o.Loc))
				if !private[o.Loc] {
					t = append(t, Fn(Frm))
				}
			case OpStore:
				if !private[o.Loc] {
					t = append(t, Fn(Fww))
				}
				t = append(t, St(o.Loc, o.Val))
			case OpRMW:
				t = append(t, o)
			case OpFence:
				t = append(t, Fn(Fsc))
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// GenerateIRPrograms enumerates all two-thread LIMM programs with up to
// maxOps ops per thread over two shared locations, including every fence
// kind — the source domain for verifying IR→Arm mappings exhaustively
// (MapIRToArm and MapIRToArmWeak take arbitrary IR programs, not just
// images of the x86 mapping, because the fence merger §7.2 rewrites the
// fence structure before lowering).
func GenerateIRPrograms(maxOps int) []*Program {
	ops := []Op{
		Ld("X"), Ld("Y"),
		St("X", 1), St("Y", 1),
		RMW("X", 2),
		Fn(Frm), Fn(Fww), Fn(Fsc),
	}
	var threads [][]Op
	var gen func(cur []Op)
	gen = func(cur []Op) {
		if len(cur) > 0 {
			threads = append(threads, append([]Op(nil), cur...))
		}
		if len(cur) == maxOps {
			return
		}
		for _, o := range ops {
			gen(append(cur, o))
		}
	}
	gen(nil)

	var out []*Program
	for i, t0 := range threads {
		for j, t1 := range threads {
			if j < i {
				continue // symmetric
			}
			out = append(out, &Program{
				Name:    fmt.Sprintf("gen_%d_%d", i, j),
				Threads: [][]Op{t0, t1},
			})
		}
	}
	return out
}

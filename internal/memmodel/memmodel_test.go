package memmodel

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// behaviorsContain reports whether the behavior set has an entry whose read
// observations include all the given key=value pairs.
func behaviorsContain(bs map[string]Behavior, want map[string]int) bool {
	for _, b := range bs {
		all := true
		for k, v := range want {
			if b.Reads[k] != v {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

func sb() *Program {
	return &Program{Name: "SB", Threads: [][]Op{
		{St("X", 1), Ld("Y")},
		{St("Y", 1), Ld("X")},
	}}
}

func mp() *Program {
	return &Program{Name: "MP", Threads: [][]Op{
		{St("X", 1), St("Y", 1)},
		{Ld("Y"), Ld("X")},
	}}
}

// Fig. 1: the non-SC outcome a=b=0 of SB is allowed on x86 and Arm (and
// disallowed under SC).
func TestFig1SB(t *testing.T) {
	weak := map[string]int{"t0.Y.0": 0, "t1.X.0": 0}
	if !behaviorsContain(BehaviorsOf(sb(), X86, true), weak) {
		t.Error("x86 must allow SB's a=b=0")
	}
	if !behaviorsContain(BehaviorsOf(sb(), Arm, true), weak) {
		t.Error("Arm must allow SB's a=b=0")
	}
	if behaviorsContain(BehaviorsOf(sb(), SC, true), weak) {
		t.Error("SC must forbid SB's a=b=0")
	}
}

// Fig. 1: MP's a=1,b=0 is disallowed on x86 but allowed on Arm.
func TestFig1MP(t *testing.T) {
	weak := map[string]int{"t1.Y.0": 1, "t1.X.0": 0}
	if behaviorsContain(BehaviorsOf(mp(), X86, true), weak) {
		t.Error("x86 must forbid MP's a=1,b=0")
	}
	if !behaviorsContain(BehaviorsOf(mp(), Arm, true), weak) {
		t.Error("Arm must allow MP's a=1,b=0")
	}
}

// Fig. 9: the fence-mapped MP program forbids a=1,b=0 at the IR and Arm
// levels, matching x86.
func TestFig9MappedMP(t *testing.T) {
	weak := map[string]int{"t1.Y.0": 1, "t1.X.0": 0}
	irMP := MapX86ToIR(mp())
	if behaviorsContain(BehaviorsOf(irMP, LIMM, true), weak) {
		t.Error("LIMM must forbid the mapped MP's a=1,b=0")
	}
	armMP := MapIRToArm(irMP)
	if behaviorsContain(BehaviorsOf(armMP, Arm, true), weak) {
		t.Error("Arm must forbid the fully mapped MP's a=1,b=0")
	}
	// Dropping the fences (Fig. 2's broken translation) re-admits it.
	naked := &Program{Name: "MP-naked", Threads: [][]Op{
		{St("X", 1), St("Y", 1)},
		{Ld("Y"), Ld("X")},
	}}
	if !behaviorsContain(BehaviorsOf(naked, Arm, true), weak) {
		t.Error("unfenced Arm translation must exhibit the Fig. 2 bug")
	}
}

// Fig. 10: the DMBFF fences around RMWs forbid the listed outcomes on Arm,
// matching LIMM; removing them would re-allow the outcomes.
func TestFig10RMWFences(t *testing.T) {
	fig10a := &Program{Name: "Fig10a", Threads: [][]Op{
		{St("X", 1), RMWE("Y", 0, 2)},
		{St("Y", 1), RMWE("X", 0, 2)},
	}}
	// Disallowed outcome: X=Y=2. With expected-read RMWs the atomicity
	// axiom (common to every model, §6.2) forbids it at all three levels.
	for _, m := range []Model{LIMM, X86} {
		if _, bad := BehaviorsOf(fig10a, m, false)["X=2;Y=2"]; bad {
			t.Errorf("%s must forbid X=Y=2 in Fig10a", m.Name)
		}
	}
	if _, bad := BehaviorsOf(MapIRToArm(fig10a), Arm, false)["X=2;Y=2"]; bad {
		t.Error("mapped Arm must forbid X=Y=2 in Fig10a")
	}

	// Fig10b (SB with RMWs): a=b=0 is disallowed in LIMM and in the mapped
	// Arm program, but re-appears if the mapping omits the DMBFF fences —
	// the necessity half of Thm 7.4's precision claim.
	fig10b := &Program{Name: "Fig10b", Threads: [][]Op{
		{RMWE("X", 0, 2), Ld("Y")},
		{RMWE("Y", 0, 2), Ld("X")},
	}}
	weak := map[string]int{"t0.Y.0": 0, "t1.X.0": 0}
	if behaviorsContain(BehaviorsOf(fig10b, LIMM, true), weak) {
		t.Error("LIMM must forbid a=b=0 in Fig10b")
	}
	if behaviorsContain(BehaviorsOf(MapIRToArm(fig10b), Arm, true), weak) {
		t.Error("mapped Arm must forbid a=b=0 in Fig10b")
	}
	if !behaviorsContain(BehaviorsOf(fig10b, Arm, true), weak) {
		t.Error("Arm without the DMBFF fences must allow a=b=0 in Fig10b")
	}
}

// Theorem 7.3/7.4: the mapping schemes are correct on the named litmus
// programs at every stage (x86 -> IR -> Arm) and composed.
func TestMappingClassicTests(t *testing.T) {
	for _, p := range ClassicTests() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			if err := CheckMapping(p, X86, MapX86ToIR, LIMM); err != nil {
				t.Errorf("x86->IR: %v", err)
			}
			ir := MapX86ToIR(p)
			if err := CheckMapping(ir, LIMM, MapIRToArm, Arm); err != nil {
				t.Errorf("IR->Arm: %v", err)
			}
			if err := CheckMapping(p, X86, func(q *Program) *Program {
				return MapIRToArm(MapX86ToIR(q))
			}, Arm); err != nil {
				t.Errorf("x86->Arm composed: %v", err)
			}
		})
	}
}

// Appendix B direction: Arm -> IR -> x86.
func TestMappingArmToX86(t *testing.T) {
	armTests := []*Program{
		{Name: "arm-mp-dmb", Threads: [][]Op{
			{St("X", 1), Fn(DMBST), St("Y", 1)},
			{Ld("Y"), Fn(DMBLD), Ld("X")},
		}},
		{Name: "arm-sb-dmbff", Threads: [][]Op{
			{St("X", 1), Fn(DMBFF), Ld("Y")},
			{St("Y", 1), Fn(DMBFF), Ld("X")},
		}},
		{Name: "arm-rmw", Threads: [][]Op{
			{RMW("X", 1), Ld("Y")},
			{RMW("Y", 1), Ld("X")},
		}},
	}
	for _, p := range armTests {
		if err := CheckMapping(p, Arm, func(q *Program) *Program {
			return MapIRToX86(MapArmToIR(q))
		}, X86); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// The precision argument of Thm 7.3: dropping either fence from the x86->IR
// mapping breaks it (MP distinguishes both).
func TestMappingPrecision(t *testing.T) {
	noFrm := func(p *Program) *Program {
		out := MapX86ToIR(p)
		for ti, th := range out.Threads {
			var nt []Op
			for _, o := range th {
				if o.Kind == OpFence && o.Fence == Frm {
					continue
				}
				nt = append(nt, o)
			}
			out.Threads[ti] = nt
		}
		return out
	}
	noFww := func(p *Program) *Program {
		out := MapX86ToIR(p)
		for ti, th := range out.Threads {
			var nt []Op
			for _, o := range th {
				if o.Kind == OpFence && o.Fence == Fww {
					continue
				}
				nt = append(nt, o)
			}
			out.Threads[ti] = nt
		}
		return out
	}
	if err := CheckMapping(mp(), X86, noFrm, LIMM); err == nil {
		t.Error("mapping without Frm should be unsound on MP")
	}
	if err := CheckMapping(mp(), X86, noFww, LIMM); err == nil {
		t.Error("mapping without Fww should be unsound on MP")
	}
}

// Exhaustive bounded mapping verification over all generated two-thread
// programs (the Agda-proof substitute).
func TestMappingExhaustive(t *testing.T) {
	max := 2
	if testing.Short() {
		max = 1
	}
	progs := GenerateX86Programs(max)
	t.Logf("checking %d generated programs", len(progs))
	for _, p := range progs {
		if err := CheckMapping(p, X86, func(q *Program) *Program {
			return MapIRToArm(MapX86ToIR(q))
		}, Arm); err != nil {
			t.Fatalf("%v", err)
		}
	}
}

// Fig. 11a: recompute the reordering table and compare with the paper.
func TestFig11aTable(t *testing.T) {
	if testing.Short() {
		t.Skip("table computation is exhaustive; skipped in -short mode")
	}
	got := ReorderTable()
	want := PaperReorderTable()
	if got != want {
		t.Errorf("computed table differs from the paper:\ncomputed:\n%s\npaper:\n%s",
			FormatTable(got), FormatTable(want))
	}
}

// Spot-check a few table cells cheaply (runs in -short mode too).
func TestFig11aSpotChecks(t *testing.T) {
	cases := []struct {
		a, b Cat
		want Verdict
	}{
		{CatRna, CatWna, Safe},
		{CatRna, CatRMW, Unsafe},
		{CatRna, CatFrm, Unsafe},
		{CatRna, CatFww, Safe},
		{CatWna, CatFrm, Safe},
		{CatWna, CatFww, Unsafe},
		{CatFww, CatRna, Safe},
		{CatFsc, CatRna, Unsafe},
		{CatFrm, CatFrm, Equal},
	}
	for _, c := range cases {
		got, witness := CheckReorder(c.a, c.b)
		if got != c.want {
			t.Errorf("reorder %s·%s: got %s, want %s (%s)", c.a, c.b, got, c.want, witness)
		}
	}
}

// Fig. 11b: the six elimination rules are sound with their listed fences
// under the paper's behavior definition (final memory values, Thm 7.5).
func TestFig11bEliminations(t *testing.T) {
	sound := []struct {
		rule  Elim
		fence Fence
	}{
		{ElimRAR, FenceNone},
		{ElimRAW, FenceNone},
		{ElimWAW, FenceNone},
		{ElimFRAR, Frm},
		{ElimFRAR, Fww},
		{ElimFRAW, Fsc},
		{ElimFRAW, Fww},
		{ElimFWAW, Frm},
		{ElimFWAW, Fww},
	}
	for _, c := range sound {
		if err := CheckElimination(c.rule, c.fence, false); err != nil {
			t.Errorf("rule %d fence %d should be sound: %v", c.rule, c.fence, err)
		}
	}
}

// The adjacent eliminations remain sound even when every load's value is
// observable (the stronger criterion our pipeline's GVN/DSE rely on).
func TestFig11bAdjacentStrong(t *testing.T) {
	for _, rule := range []Elim{ElimRAR, ElimRAW, ElimWAW} {
		if err := CheckElimination(rule, FenceNone, true); err != nil {
			t.Errorf("adjacent rule %d should be sound with observable reads: %v", rule, err)
		}
	}
}

// Under the stronger observation model (read values observable — i.e. read
// results may flow into final memory), eliminating a write *across* a Fww
// is distinguishable: the eliminated write anchored a store-store ordering
// that a message-passing reader can detect. This documents why the
// pipeline's DSE only crosses fences for accesses it can pair exactly and
// why Thm 7.5's Behav is final-values-only.
func TestFig11bStrongObservation(t *testing.T) {
	if err := CheckElimination(ElimFWAW, Fww, true); err == nil {
		t.Error("expected a counterexample for F-WAW across Fww with observable reads")
	} else {
		t.Logf("counterexample (as expected): %v", err)
	}
}

// §7.2: fence merging and strengthening.
func TestFenceMerging(t *testing.T) {
	cases := []struct{ f1, f2, merged Fence }{
		{Frm, Frm, Frm},
		{Fww, Fww, Fww},
		{Fsc, Fsc, Fsc},
		{Frm, Fww, Fsc},
		{Fww, Frm, Fsc},
		{Frm, Fsc, Fsc},
		{Fsc, Fww, Fsc},
	}
	for _, c := range cases {
		if err := CheckFenceMerge(c.f1, c.f2, c.merged); err != nil {
			t.Errorf("%v", err)
		}
	}
	// Weakening is not merging: replacing Fsc;Fsc by Frm must fail.
	if err := CheckFenceMerge(Fsc, Fsc, Frm); err == nil {
		t.Error("weakening Fsc;Fsc to Frm should be unsound")
	}
}

// §7.2: speculative load introduction is sound on LIMM.
func TestSpeculativeLoadIntroduction(t *testing.T) {
	if err := CheckLoadIntroduction(); err != nil {
		t.Error(err)
	}
}

// LIMM allows MP's weak outcome without fences (non-atomics are unordered)
// — this is what licenses LLVM's reorderings (§6.3).
func TestLIMMNonAtomicsUnordered(t *testing.T) {
	weak := map[string]int{"t1.Y.0": 1, "t1.X.0": 0}
	if !behaviorsContain(BehaviorsOf(mp(), LIMM, true), weak) {
		t.Error("LIMM must allow MP's a=1,b=0 for plain na accesses")
	}
}

func TestProgramPrinting(t *testing.T) {
	p := MapX86ToIR(mp())
	s := p.String()
	for _, want := range []string{"Fww", "W(X,1)", "Frm", "R(Y)"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in %q", want, s)
		}
	}
}

// Property tests on the relation algebra underpinning every model.

func TestRelationClosureProperties(t *testing.T) {
	prop := func(edges []uint16, nRaw uint8) bool {
		// n crosses the 64-bit word boundary often enough (via the %70) to
		// exercise multi-word rows in the packed representation.
		n := int(nRaw%70) + 2
		r := newRel(n)
		ref := newBoolRel(n)
		for _, e := range edges {
			a := int(e>>8) % n
			b := int(e&0xFF) % n
			if a != b {
				r.set(a, b)
				ref.set(a, b)
			}
		}
		// acyclic() must agree with the reference closure+irreflexivity
		// (run on a copy, since acyclic is destructive).
		probe := newRel(n)
		probe.copyFrom(r)
		refClosed := newBoolRel(n)
		refClosed.union(ref)
		refClosed.transitiveClosure()
		if probe.acyclic() != refClosed.irreflexive() {
			return false
		}
		r.transitiveClosure()
		ref.transitiveClosure()
		// The packed closure equals the reference closure.
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if r.has(a, b) != ref.has(a, b) {
					return false
				}
			}
		}
		// Idempotence.
		snapshot := append([]uint64(nil), r.bits...)
		r.transitiveClosure()
		for i := range r.bits {
			if r.bits[i] != snapshot[i] {
				return false
			}
		}
		// Transitivity: has(a,b) && has(b,c) => has(a,c).
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if !r.has(a, b) {
					continue
				}
				for c := 0; c < n; c++ {
					if r.has(b, c) && !r.has(a, c) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: every SC behavior is allowed by x86, Arm and LIMM (the weak
// models only ever ADD behaviors), on random small programs.
func TestWeakModelsContainSC(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ops := []Op{Ld("X"), Ld("Y"), St("X", 1), St("Y", 1), St("X", 2), RMW("Y", 3), Fn(Fsc)}
	for trial := 0; trial < 40; trial++ {
		var threads [][]Op
		for t := 0; t < 2; t++ {
			var th []Op
			for i := 0; i < 1+rng.Intn(2); i++ {
				th = append(th, ops[rng.Intn(len(ops))])
			}
			threads = append(threads, th)
		}
		p := &Program{Name: "rand", Threads: threads}
		scB := BehaviorsOf(p, SC, true)
		for _, m := range []Model{X86, Arm, LIMM} {
			mb := BehaviorsOf(p, m, true)
			for k := range scB {
				if _, ok := mb[k]; !ok {
					t.Fatalf("%s drops an SC behavior of %s: %s", m.Name, p, k)
				}
			}
		}
	}
}

// Property: x86 behaviors are a subset of Arm behaviors for fence-free
// programs (TSO is stronger than the Arm model).
func TestX86StrongerThanArm(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ops := []Op{Ld("X"), Ld("Y"), St("X", 1), St("Y", 1)}
	for trial := 0; trial < 40; trial++ {
		var threads [][]Op
		for t := 0; t < 2; t++ {
			var th []Op
			for i := 0; i < 1+rng.Intn(2); i++ {
				th = append(th, ops[rng.Intn(len(ops))])
			}
			threads = append(threads, th)
		}
		p := &Program{Name: "rand", Threads: threads}
		xb := BehaviorsOf(p, X86, true)
		ab := BehaviorsOf(p, Arm, true)
		for k := range xb {
			if _, ok := ab[k]; !ok {
				t.Fatalf("x86 behavior not in Arm for %s: %s", p, k)
			}
		}
	}
}

// Appendix A: Arm release/acquire half-fences restore message passing.
func TestAppendixAReleaseAcquire(t *testing.T) {
	weak := map[string]int{"t1.Y.0": 1, "t1.X.0": 0}
	relAcq := &Program{Name: "MP+rel+acq", Threads: [][]Op{
		{St("X", 1), StR("Y", 1)},
		{LdA("Y"), Ld("X")},
	}}
	if behaviorsContain(BehaviorsOf(relAcq, Arm, true), weak) {
		t.Error("Arm must forbid MP's weak outcome with release store + acquire load")
	}
	// Release alone is not enough: the reader can still reorder its loads.
	relOnly := &Program{Name: "MP+rel", Threads: [][]Op{
		{St("X", 1), StR("Y", 1)},
		{Ld("Y"), Ld("X")},
	}}
	if !behaviorsContain(BehaviorsOf(relOnly, Arm, true), weak) {
		t.Error("Arm must still allow the weak outcome with only a release store")
	}
	// Acquire alone is likewise insufficient.
	acqOnly := &Program{Name: "MP+acq", Threads: [][]Op{
		{St("X", 1), St("Y", 1)},
		{LdA("Y"), Ld("X")},
	}}
	if !behaviorsContain(BehaviorsOf(acqOnly, Arm, true), weak) {
		t.Error("Arm must still allow the weak outcome with only an acquire load")
	}
}

package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// MapX86ToIR applies the Fig. 8a mapping scheme:
//
//	ld     -> ld.na ; Frm
//	st     -> Fww ; st.na
//	RMW    -> RMWsc
//	MFENCE -> Fsc
func MapX86ToIR(p *Program) *Program {
	out := &Program{Name: p.Name + "→IR", Init: p.Init}
	for _, th := range p.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad:
				t = append(t, Ld(o.Loc), Fn(Frm))
			case OpStore:
				t = append(t, Fn(Fww), St(o.Loc, o.Val))
			case OpRMW:
				t = append(t, o) // RMW -> RMWsc (expectation preserved)
			case OpFence:
				t = append(t, Fn(Fsc))
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// MapIRToArm applies the Fig. 8b mapping scheme:
//
//	ld.na  -> ld
//	st.na  -> st
//	RMWsc  -> DMBFF ; RMW ; DMBFF
//	Frm    -> DMBLD
//	Fww    -> DMBST
//	Fsc    -> DMBFF
func MapIRToArm(p *Program) *Program {
	out := &Program{Name: p.Name + "→Arm", Init: p.Init}
	for _, th := range p.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad:
				t = append(t, Ld(o.Loc))
			case OpStore:
				t = append(t, St(o.Loc, o.Val))
			case OpRMW:
				t = append(t, Fn(DMBFF), o, Fn(DMBFF))
			case OpFence:
				switch o.Fence {
				case Frm:
					t = append(t, Fn(DMBLD))
				case Fww:
					t = append(t, Fn(DMBST))
				default:
					t = append(t, Fn(DMBFF))
				}
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// MapIRToX86 applies the Appendix B mapping (IR back to x86, used for the
// Arm-to-x86 direction): non-atomic accesses need no fences under TSO, Fsc
// becomes MFENCE, Frm/Fww vanish.
func MapIRToX86(p *Program) *Program {
	out := &Program{Name: p.Name + "→x86", Init: p.Init}
	for _, th := range p.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad:
				t = append(t, Ld(o.Loc))
			case OpStore:
				t = append(t, St(o.Loc, o.Val))
			case OpRMW:
				t = append(t, o)
			case OpFence:
				if o.Fence == Fsc {
					t = append(t, Fn(MFENCE))
				}
				// Frm/Fww: x86 loads and stores are already ordered.
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// MapArmToIR lifts Arm programs into the IR (Appendix B direction).
func MapArmToIR(p *Program) *Program {
	out := &Program{Name: p.Name + "→IR", Init: p.Init}
	for _, th := range p.Threads {
		var t []Op
		for _, o := range th {
			switch o.Kind {
			case OpLoad:
				t = append(t, Ld(o.Loc))
			case OpStore:
				t = append(t, St(o.Loc, o.Val))
			case OpRMW:
				t = append(t, o)
			case OpFence:
				switch o.Fence {
				case DMBLD:
					t = append(t, Fn(Frm))
				case DMBST:
					t = append(t, Fn(Fww))
				default:
					t = append(t, Fn(Fsc))
				}
			}
		}
		out.Threads = append(out.Threads, t)
	}
	return out
}

// CheckMapping verifies Theorem 7.1 on one program: every behavior of the
// target program under the target model is a behavior of the source program
// under the source model. Loads map 1:1 across our mapping schemes, so
// behaviors are compared including read values.
func CheckMapping(src *Program, srcModel Model, mapFn func(*Program) *Program, tgtModel Model) error {
	return CheckMappingBudget(src, srcModel, mapFn, tgtModel, Budget{}) // unbounded: cannot cut off
}

// compareFolds is the inclusion check behind CheckMapping: every target
// behavior must already be a source behavior. Our mapping schemes preserve
// accesses 1:1 (they only insert fences), so the two folds almost always
// have identical observation layouts and the check compares interned keys
// directly; the string maps are only materialized on layout mismatch or
// when a counterexample must be reported.
func compareFolds(src *Program, srcModel, tgtModel Model, srcS, tgtS *behaviorSet) error {
	if !srcS.comparable(tgtS) {
		return compareBehaviors(src, srcModel, tgtModel, srcS.result(), tgtS.result())
	}
	var extra []string
	for key := range tgtS.interned {
		if _, ok := srcS.interned[key]; !ok {
			extra = append(extra, tgtS.keyString(key))
		}
	}
	return unsoundErr(src, srcModel, tgtModel, extra)
}

// compareBehaviors is the string-keyed fallback of compareFolds, also used
// by callers holding plain behavior maps.
func compareBehaviors(src *Program, srcModel, tgtModel Model, srcB, tgtB map[string]Behavior) error {
	var extra []string
	for b := range tgtB {
		if _, ok := srcB[b]; !ok {
			extra = append(extra, b)
		}
	}
	return unsoundErr(src, srcModel, tgtModel, extra)
}

func unsoundErr(src *Program, srcModel, tgtModel Model, extra []string) error {
	if len(extra) == 0 {
		return nil
	}
	sort.Strings(extra) // map order is random; keep the message stable
	return fmt.Errorf("mapping %s -> %s unsound on %s: target-only behaviors %s",
		srcModel.Name, tgtModel.Name, src, strings.Join(extra, " | "))
}

// ClassicTests returns the named litmus programs used throughout the paper
// (Figs. 1, 9, 10) plus the standard shapes LB, 2+2W and IRIW.
func ClassicTests() []*Program {
	return []*Program{
		{Name: "SB", Threads: [][]Op{
			{St("X", 1), Ld("Y")},
			{St("Y", 1), Ld("X")},
		}},
		{Name: "MP", Threads: [][]Op{
			{St("X", 1), St("Y", 1)},
			{Ld("Y"), Ld("X")},
		}},
		{Name: "LB", Threads: [][]Op{
			{Ld("X"), St("Y", 1)},
			{Ld("Y"), St("X", 1)},
		}},
		{Name: "2+2W", Threads: [][]Op{
			{St("X", 1), St("Y", 2)},
			{St("Y", 1), St("X", 2)},
		}},
		{Name: "R", Threads: [][]Op{
			{St("X", 1), St("Y", 1)},
			{St("Y", 2), Ld("X")},
		}},
		{Name: "MP+mfence", Threads: [][]Op{
			{St("X", 1), Fn(MFENCE), St("Y", 1)},
			{Ld("Y"), Fn(MFENCE), Ld("X")},
		}},
		{Name: "SB+mfence", Threads: [][]Op{
			{St("X", 1), Fn(MFENCE), Ld("Y")},
			{St("Y", 1), Fn(MFENCE), Ld("X")},
		}},
		{Name: "Fig10a", Threads: [][]Op{
			{St("X", 1), RMW("Y", 2)},
			{St("Y", 1), RMW("X", 2)},
		}},
		{Name: "Fig10b", Threads: [][]Op{
			{RMW("X", 2), Ld("Y")},
			{RMW("Y", 2), Ld("X")},
		}},
		{Name: "RMW-MP", Threads: [][]Op{
			{St("X", 1), RMW("Y", 1)},
			{Ld("Y"), Ld("X")},
		}},
	}
}

// X86ThreadSkeletons enumerates the nonempty per-thread instruction
// sequences — up to maxOps operations over the fixed two-location x86 op
// alphabet — underlying GenerateX86Programs. The campaign engine shards
// generation by thread-skeleton pair instead of materializing the whole
// program family, so bound-4 campaigns stream in flat memory.
func X86ThreadSkeletons(maxOps int) [][]Op {
	ops := []Op{
		Ld("X"), Ld("Y"),
		St("X", 1), St("Y", 1),
		RMW("X", 2), RMW("Y", 2),
		Fn(MFENCE),
	}
	var threads [][]Op
	var gen func(cur []Op)
	gen = func(cur []Op) {
		if len(cur) > 0 {
			threads = append(threads, append([]Op(nil), cur...))
		}
		if len(cur) == maxOps {
			return
		}
		for _, o := range ops {
			gen(append(cur, o))
		}
	}
	gen(nil)
	return threads
}

// GenerateX86Programs enumerates small x86-level litmus programs: two
// threads, up to maxOps operations each, over two locations. This is the
// exhaustive family backing the bounded mapping proofs. Prefer the campaign
// engine (internal/campaign) for large bounds — it pairs the skeletons
// lazily instead of materializing every program up front.
func GenerateX86Programs(maxOps int) []*Program {
	threads := X86ThreadSkeletons(maxOps)
	var out []*Program
	for i, t0 := range threads {
		for j := i; j < len(threads); j++ { // j < i is symmetric
			out = append(out, &Program{
				Name:    fmt.Sprintf("gen_%d_%d", i, j),
				Threads: [][]Op{t0, threads[j]},
			})
		}
	}
	return out
}

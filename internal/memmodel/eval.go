package memmodel

import (
	"strconv"
	"strings"
)

// rmwPair is one rmw read/write event pair of the skeleton.
type rmwPair struct{ r, w int }

// statics holds every relation and lookup table that depends only on a
// program's event skeleton — not on any execution's rf/co choice. It is
// computed once per program in newEnumSpace and then shared read-only by
// every enumeration worker: the per-execution path only ORs the
// execution-varying edges on top (see evaluator.consistent).
type statics struct {
	n      int
	events []*Event // skeleton events in ID order
	locs   []string // sorted location universe
	reads  []*Event // skeleton read events in ID order

	po    *relation // full program order (init writes precede everything)
	poLoc *relation // po restricted to same-location non-fence pairs
	// ext marks "external" pairs — neither po(a,b) nor po(b,a) — which is
	// exactly the side condition defining rfe/coe/fre. It is symmetric.
	ext *relation

	rmws   []rmwPair
	locIdx []int // event ID -> index into locs (-1 for fences)
	// readKeys are the canonical per-read behavior keys
	// ("t<tid>.<loc>.<k>"), precomputed so behavior extraction never
	// re-sorts or re-formats in the hot loop. readSorted lists read indexes
	// in lexicographic key order — the order Behavior.Key emits them — and
	// readSlot inverts it (read index -> canonical slot). Packing read
	// values by canonical slot makes interned keys comparable across two
	// programs whenever their location and read-key layouts agree.
	readKeys   []string
	readSorted []int
	readSlot   []int
}

// buildStatics hoists the skeleton-invariant relations of an event skeleton.
// A non-nil arena supplies the relation words, index slices and interned
// read-key strings.
func buildStatics(events []*Event, locs []string, reads []*Event, a *arena) *statics {
	n := len(events)
	rels := a.relArena(n, 3)
	var k *statics
	if a != nil {
		k = &a.stats.take(1)[0]
	} else {
		k = &statics{}
	}
	*k = statics{
		n: n, events: events, locs: locs, reads: reads,
		po: &rels[0], poLoc: &rels[1], ext: &rels[2],
	}
	if a != nil {
		k.locIdx = a.ints.take(n)
	} else {
		k.locIdx = make([]int, n)
	}
	nrmw := 0
	for _, e := range events {
		if e.Kind == EvR && e.RMW >= 0 {
			nrmw++
		}
	}
	if a != nil {
		k.rmws = a.rmwps.take(nrmw)[:0]
	}
	for _, e := range events {
		k.locIdx[e.ID] = -1
		if e.Kind != EvF {
			for i, l := range locs { // location universes are tiny; no map
				if l == e.Loc {
					k.locIdx[e.ID] = i
					break
				}
			}
		}
		if e.Kind == EvR && e.RMW >= 0 {
			k.rmws = append(k.rmws, rmwPair{r: e.ID, w: e.RMW})
		}
	}
	for _, a := range events {
		for _, b := range events {
			if a.ID == b.ID {
				continue
			}
			if poBefore(a, b) {
				k.po.set(a.ID, b.ID)
				if a.Kind != EvF && b.Kind != EvF && a.Loc == b.Loc {
					k.poLoc.set(a.ID, b.ID)
				}
			}
		}
	}
	for _, a := range events {
		for _, b := range events {
			if a.ID != b.ID && !k.po.has(a.ID, b.ID) && !k.po.has(b.ID, a.ID) {
				k.ext.set(a.ID, b.ID)
			}
		}
	}
	// Read slot keys, in (tid, idx) order — which is ID order, because
	// buildEvents lowers threads in order and ops in order. The occurrence
	// index is counted by scanning earlier reads: the handful of reads per
	// litmus program makes that cheaper than a counting map. Arena mode
	// interns the key strings, so a bounded sweep builds each distinct key
	// exactly once.
	if a != nil {
		k.readKeys = a.strs.take(len(reads))
	} else {
		k.readKeys = make([]string, len(reads))
	}
	for i, r := range reads {
		occ := 0
		for _, prev := range reads[:i] {
			if prev.Tid == r.Tid && prev.Loc == r.Loc {
				occ++
			}
		}
		if a != nil {
			a.keyBuf = append(a.keyBuf[:0], 't')
			a.keyBuf = strconv.AppendInt(a.keyBuf, int64(r.Tid), 10)
			a.keyBuf = append(a.keyBuf, '.')
			a.keyBuf = append(a.keyBuf, r.Loc...)
			a.keyBuf = append(a.keyBuf, '.')
			a.keyBuf = strconv.AppendInt(a.keyBuf, int64(occ), 10)
			k.readKeys[i] = a.internKey()
		} else {
			k.readKeys[i] = "t" + strconv.Itoa(r.Tid) + "." + r.Loc + "." + strconv.Itoa(occ)
		}
	}
	// Canonical slot order = lexicographic key order (what Behavior.Key
	// emits). Insertion sort: a handful of reads, and sort.Slice's reflection
	// setup would cost more than the sort.
	if a != nil {
		k.readSorted = a.ints.take(len(reads))
		k.readSlot = a.ints.take(len(reads))
	} else {
		k.readSorted = make([]int, len(reads))
		k.readSlot = make([]int, len(reads))
	}
	for i := range k.readSorted {
		k.readSorted[i] = i
	}
	for i := 1; i < len(k.readSorted); i++ {
		for j := i; j > 0 && k.readKeys[k.readSorted[j]] < k.readKeys[k.readSorted[j-1]]; j-- {
			k.readSorted[j], k.readSorted[j-1] = k.readSorted[j-1], k.readSorted[j]
		}
	}
	for slot, si := range k.readSorted {
		k.readSlot[si] = slot
	}
	return k
}

// evaluator is one enumeration worker's consistency checker: two scratch
// relation buffers (the model order graph and the SC-per-location graph)
// plus pointers to the shared statics and the model's hoisted static order.
// After construction, consistent() performs zero heap allocations.
type evaluator struct {
	k  *statics
	m  Model
	ms *relation // the model's skeleton-static order (m.static(k))
	g  *relation // scratch: model order graph
	s  *relation // scratch: SC-per-location graph
}

// newEvaluator builds an evaluator for one enumeration of sp under m,
// computing the model's static order. Use newEvaluatorShared to share a
// precomputed static order across parallel workers.
func newEvaluator(sp *enumSpace, m Model) *evaluator {
	return newEvaluatorShared(sp, m, m.static(sp.stat, nil))
}

// newEvaluatorShared builds an evaluator around a precomputed (read-only)
// model static order, so parallel workers hoist it once per enumeration
// rather than once per worker.
func newEvaluatorShared(sp *enumSpace, m Model, ms *relation) *evaluator {
	return newEvaluatorIn(sp, m, ms, nil)
}

// newEvaluatorIn is newEvaluatorShared with the scratch relations drawn from
// the arena.
func newEvaluatorIn(sp *enumSpace, m Model, ms *relation, a *arena) *evaluator {
	k := sp.stat
	scratch := a.relArena(k.n, 2)
	var ev *evaluator
	if a != nil {
		ev = &a.evals.take(1)[0]
	} else {
		ev = &evaluator{}
	}
	*ev = evaluator{k: k, m: m, ms: ms, g: &scratch[0], s: &scratch[1]}
	return ev
}

// addDynamic ORs the execution-varying edges into g: rf (write→read), co
// (per-location total order pairs) and fr (read → writes co-after its
// source), each restricted to external pairs when the corresponding flag is
// set. It reads only the walker-maintained dense arrays (rfOf, coOrd,
// coPos), never the exported maps, and allocates nothing.
func (e *evaluator) addDynamic(g *relation, x *Execution, extRF, extCO, extFR bool) {
	k := e.k
	for _, r := range k.reads {
		src := int(x.rfOf[r.ID])
		if src < 0 {
			continue
		}
		if !extRF || k.ext.has(src, r.ID) {
			g.set(src, r.ID)
		}
	}
	for _, order := range x.coOrd {
		for i := 0; i < len(order); i++ {
			for j := i + 1; j < len(order); j++ {
				if !extCO || k.ext.has(order[i], order[j]) {
					g.set(order[i], order[j])
				}
			}
		}
	}
	for _, r := range k.reads {
		src := int(x.rfOf[r.ID])
		if src < 0 {
			continue
		}
		order := x.coOrd[k.locIdx[r.ID]]
		for p := int(x.coPos[src]) + 1; p < len(order); p++ {
			w := order[p]
			if !extFR || k.ext.has(r.ID, w) {
				g.set(r.ID, w)
			}
		}
	}
}

// consistent decides the full §6.2 consistency predicate — SC-per-location,
// atomicity, and the model axiom — on one candidate execution, reusing the
// evaluator's scratch buffers. Zero heap allocations.
func (e *evaluator) consistent(x *Execution) bool {
	// SC-per-location: (po|loc ∪ rf ∪ co ∪ fr) acyclic.
	e.s.copyFrom(e.k.poLoc)
	e.addDynamic(e.s, x, false, false, false)
	if !e.s.acyclic() {
		return false
	}
	if !e.atomicity(x) {
		return false
	}
	// The model axiom: (static ∪ dynamic)+ irreflexive.
	e.g.copyFrom(e.ms)
	e.addDynamic(e.g, x, e.m.extRF, e.m.extCO, e.m.extFR)
	return e.g.acyclic()
}

// atomicity checks rmw ∩ (fre;coe) = ∅ (§6.2) without materializing fre or
// coe: a violating write w' must sit strictly between the rmw read's rf
// source and the rmw write in their location's coherence order, so the dense
// coPos index reduces the check to a scan of that co segment.
func (e *evaluator) atomicity(x *Execution) bool {
	k := e.k
	for _, p := range k.rmws {
		src := int(x.rfOf[p.r])
		if src < 0 {
			continue
		}
		i, j := int(x.coPos[src]), int(x.coPos[p.w])
		if j <= i+1 {
			continue
		}
		order := x.coOrd[k.locIdx[p.r]]
		for t := i + 1; t < j; t++ {
			wp := order[t]
			if k.ext.has(p.r, wp) && k.ext.has(wp, p.w) {
				return false
			}
		}
	}
	return true
}

// ikey is an interned behavior key: up to 16 observation slots (the final
// value per location in locs order, then — when reads are observed — every
// read's value in canonical readSorted order), packed 8 bits per slot. Two
// executions get equal keys iff their behaviors are equal, and because the
// slot layout is canonical, keys are comparable *across* two programs
// whenever their layouts agree (see comparable). The string Behavior.Key
// form is only materialized on demand, outside the enumeration hot loop.
type ikey struct{ hi, lo uint64 }

// slot extracts observation slot s of the packed key.
func (key ikey) slot(s int) int {
	if s < 8 {
		return int(key.lo >> (8 * uint(s)) & 0xff)
	}
	return int(key.hi >> (8 * uint(s-8)) & 0xff)
}

// behaviorSet folds the behaviors of consistent executions, interning
// canonical packed keys so the steady-state path is one map assignment per
// consistent execution — no string building, no Behavior values. The slow
// map catches programs whose values overflow the packed encoding (>255 or
// more than 16 observation slots) — none of the generated litmus families
// do, but correctness never depends on the fast path.
type behaviorSet struct {
	k         *statics
	withReads bool
	interned  map[ikey]struct{}
	slow      map[string]Behavior
}

func newBehaviorSet(k *statics, withReads bool) *behaviorSet {
	return &behaviorSet{k: k, withReads: withReads, interned: map[ikey]struct{}{}}
}

// pack encodes x's behavior into an ikey. ok=false means the behavior does
// not fit the packed encoding and the caller must take the string path.
func (bs *behaviorSet) pack(x *Execution) (ikey, bool) {
	k := bs.k
	slots := len(k.locs)
	if bs.withReads {
		slots += len(k.reads)
	}
	if slots > 16 {
		return ikey{}, false
	}
	var key ikey
	put := func(slot, v int) bool {
		if uint(v) > 255 {
			return false
		}
		if slot < 8 {
			key.lo |= uint64(v) << (8 * uint(slot))
		} else {
			key.hi |= uint64(v) << (8 * uint(slot-8))
		}
		return true
	}
	for ci := range k.locs {
		order := x.coOrd[ci]
		if !put(ci, x.Events[order[len(order)-1]].Val) {
			return ikey{}, false
		}
	}
	if bs.withReads {
		for si, r := range k.reads {
			if !put(len(k.locs)+k.readSlot[si], x.Events[r.ID].Val) {
				return ikey{}, false
			}
		}
	}
	return key, true
}

// add folds one consistent execution's behavior into the set: pack plus one
// map assignment, with zero allocations for an already-seen behavior.
func (bs *behaviorSet) add(x *Execution) {
	key, ok := bs.pack(x)
	if !ok {
		b := x.behaviorOf()
		if bs.slow == nil {
			bs.slow = map[string]Behavior{}
		}
		bs.slow[b.Key(bs.withReads)] = b
		return
	}
	bs.interned[key] = struct{}{}
}

// merge folds another set over the same enumeration space into bs.
func (bs *behaviorSet) merge(other *behaviorSet) {
	for key := range other.interned {
		bs.interned[key] = struct{}{}
	}
	for k, b := range other.slow {
		if bs.slow == nil {
			bs.slow = map[string]Behavior{}
		}
		bs.slow[k] = b
	}
}

// comparable reports whether two sets' interned keys decide behavior
// equality directly: same observation mode, identical location universes and
// identical canonical read-key sequences, and nothing on either slow path.
// This is what lets the inclusion checkers compare a source and a target
// program without ever materializing behavior strings.
func (bs *behaviorSet) comparable(other *behaviorSet) bool {
	a, b := bs.k, other.k
	if a == nil || b == nil || bs.withReads != other.withReads ||
		len(bs.slow) > 0 || len(other.slow) > 0 || len(a.locs) != len(b.locs) {
		return false
	}
	for i := range a.locs {
		if a.locs[i] != b.locs[i] {
			return false
		}
	}
	if !bs.withReads {
		return true
	}
	if len(a.readKeys) != len(b.readKeys) {
		return false
	}
	for i := range a.readSorted {
		if a.readKeys[a.readSorted[i]] != b.readKeys[b.readSorted[i]] {
			return false
		}
	}
	return true
}

// keyString materializes the canonical Behavior.Key string of an interned
// key — byte-identical to behaviorFromKey(key).Key(bs.withReads).
func (bs *behaviorSet) keyString(key ikey) string {
	k := bs.k
	var sb strings.Builder
	for ci, l := range k.locs {
		if ci > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(l)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(key.slot(ci)))
	}
	if !bs.withReads {
		return sb.String()
	}
	sb.WriteByte('#')
	for i, si := range k.readSorted {
		sb.WriteString(k.readKeys[si])
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(key.slot(len(k.locs) + i)))
		sb.WriteByte(';')
	}
	return sb.String()
}

// behaviorFromKey reconstructs the Behavior value of an interned key. When
// reads are not observed the key carries no read values, so Reads is empty —
// callers observing finals only never consult it.
func (bs *behaviorSet) behaviorFromKey(key ikey) Behavior {
	k := bs.k
	var sb strings.Builder
	for ci, l := range k.locs {
		if ci > 0 {
			sb.WriteByte(';')
		}
		sb.WriteString(l)
		sb.WriteByte('=')
		sb.WriteString(strconv.Itoa(key.slot(ci)))
	}
	rd := map[string]int{}
	if bs.withReads {
		for i, si := range k.readSorted {
			rd[k.readKeys[si]] = key.slot(len(k.locs) + i)
		}
	}
	return Behavior{Finals: sb.String(), Reads: rd}
}

// result converts the interned set to the canonical string-keyed map the
// public API returns.
func (bs *behaviorSet) result() map[string]Behavior {
	out := make(map[string]Behavior, len(bs.interned)+len(bs.slow))
	for key := range bs.interned {
		out[bs.keyString(key)] = bs.behaviorFromKey(key)
	}
	for k, b := range bs.slow {
		out[k] = b
	}
	return out
}

package memmodel

// relation is an n×n boolean adjacency matrix over event IDs, packed 64
// pairs per word: row a occupies the word range [a*w, (a+1)*w). Packing lets
// union, closure and copy move 64 pairs per instruction, which is what makes
// the per-execution consistency check cheap enough to run millions of times
// in the bounded checkers (the same representation herd7-style axiomatic
// checkers use).
type relation struct {
	n, w int // n events, w words per row
	bits []uint64
}

func newRel(n int) *relation {
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	return &relation{n: n, w: w, bits: make([]uint64, n*w)}
}

// newRelArena allocates count n×n relations backed by one contiguous word
// slice. The bounded checkers build fresh relation sets for thousands of tiny
// programs per second, so batching the backing allocation matters.
func newRelArena(n, count int) []relation {
	w := (n + 63) / 64
	if w == 0 {
		w = 1
	}
	row := n * w
	backing := make([]uint64, count*row)
	rs := make([]relation, count)
	for i := range rs {
		rs[i] = relation{n: n, w: w, bits: backing[i*row : (i+1)*row : (i+1)*row]}
	}
	return rs
}

func (r *relation) set(a, b int)      { r.bits[a*r.w+b>>6] |= 1 << (uint(b) & 63) }
func (r *relation) has(a, b int) bool { return r.bits[a*r.w+b>>6]&(1<<(uint(b)&63)) != 0 }

func (r *relation) clear() {
	for i := range r.bits {
		r.bits[i] = 0
	}
}

// copyFrom overwrites r with o. The two must have identical shape.
func (r *relation) copyFrom(o *relation) { copy(r.bits, o.bits) }

func (r *relation) union(o *relation) {
	for i, x := range o.bits {
		r.bits[i] |= x
	}
}

// transitiveClosure computes r+ in place: the Floyd–Warshall recurrence with
// whole-row ORs (row i absorbs row k whenever i reaches k).
func (r *relation) transitiveClosure() {
	for k := 0; k < r.n; k++ {
		kw, kb := k>>6, uint64(1)<<(uint(k)&63)
		krow := r.bits[k*r.w : (k+1)*r.w]
		for i := 0; i < r.n; i++ {
			if i == k || r.bits[i*r.w+kw]&kb == 0 {
				continue
			}
			irow := r.bits[i*r.w : (i+1)*r.w]
			for j, x := range krow {
				irow[j] |= x
			}
		}
	}
}

func (r *relation) irreflexive() bool {
	for i := 0; i < r.n; i++ {
		if r.has(i, i) {
			return false
		}
	}
	return true
}

// acyclic reports whether r, viewed as a digraph, has no cycle — the fused
// form of the models' "closure is irreflexive" axioms. It runs the same
// row-ORing closure as transitiveClosure, destructively, but returns the
// moment a diagonal bit appears: a diagonal bit can only be introduced by an
// OR into its own row, so checking right after each absorption catches the
// first cycle without finishing the closure. Inconsistent candidates (the
// vast majority during enumeration) exit early.
func (r *relation) acyclic() bool {
	if r.w == 1 {
		return acyclic1(r.bits, r.n)
	}
	for i := 0; i < r.n; i++ {
		if r.has(i, i) {
			return false
		}
	}
	for k := 0; k < r.n; k++ {
		kw, kb := k>>6, uint64(1)<<(uint(k)&63)
		krow := r.bits[k*r.w : (k+1)*r.w]
		for i := 0; i < r.n; i++ {
			if i == k || r.bits[i*r.w+kw]&kb == 0 {
				continue
			}
			irow := r.bits[i*r.w : (i+1)*r.w]
			for j, x := range krow {
				irow[j] |= x
			}
			if irow[i>>6]&(1<<(uint(i)&63)) != 0 {
				return false
			}
		}
	}
	return true
}

// acyclic1 is acyclic specialized to single-word rows — every program with at
// most 64 events, i.e. all the litmus families the bounded checkers
// enumerate. Rows are plain uint64s, so one absorption is one OR.
func acyclic1(rows []uint64, n int) bool {
	rows = rows[:n] // hoist the bounds check out of the loops
	for i, row := range rows {
		if row&(1<<uint(i)) != 0 {
			return false
		}
	}
	for k, krow := range rows {
		kb := uint64(1) << uint(k)
		for i, row := range rows {
			if i == k || row&kb == 0 {
				continue
			}
			row |= krow
			rows[i] = row
			if row&(1<<uint(i)) != 0 {
				return false
			}
		}
	}
	return true
}

// Package diag is the fault-tolerance substrate of the translation
// pipeline: typed diagnostics collected into a Report that Translate
// returns alongside its Stats, a recover boundary (Guard) that downgrades
// per-function panics to errors, and the shared budget sentinel used by the
// bounded simulators and the bounded litmus enumeration.
//
// The design goal (following "Sound Transpilation from Binary to
// Machine-Independent Code", Metere et al.) is that a hostile or broken
// input never crashes the translator and never silently mistranslates:
// every failure either degrades a single function to the provably
// conservative full-fence mapping (recorded as a Warning) or surfaces as an
// Error diagnostic carrying the stage, function and instruction address.
package diag

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
)

// ErrBudgetExceeded is the sentinel wrapped by every "ran out of budget"
// failure across the stack: simulator step limits, enumeration visit caps,
// and per-function pipeline time budgets. Callers receiving a partial
// result test for it with errors.Is.
var ErrBudgetExceeded = errors.New("execution budget exceeded")

// Stage identifies a pipeline stage for diagnostic attribution.
type Stage string

const (
	StageDisasm  Stage = "disasm"
	StageLift    Stage = "lift"
	StageRefine  Stage = "refine"
	StageFences  Stage = "fences"
	StageOpt     Stage = "opt"
	StageVerify  Stage = "verify"
	StageBackend Stage = "backend"
	// StageValidate marks the self-checking checkpoints: ir.Verify plus the
	// semantic invariants (fence preservation, pointer-cast bounds) that run
	// between pipeline stages when core.Config.Validate is set.
	StageValidate Stage = "validate"
	// StageServe marks the daemon's request-handling boundary: the recover
	// guard that turns a per-request panic into a diag.Report response
	// instead of a dead process.
	StageServe Stage = "serve"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Info records something noteworthy that required no intervention.
	Info Severity = iota
	// Warning means the pipeline degraded (a stage was skipped or a
	// function fell back to the conservative translation) but the output
	// remains sound.
	Warning
	// Error means a function or the whole module could not be translated
	// faithfully; the corresponding output (if any) is a flagged stub.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warning:
		return "warning"
	case Error:
		return "error"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// Diagnostic is one typed pipeline event: which stage, which function (""
// for module-level events), the offending instruction address when known,
// and the underlying cause. Pass names the optimization pass a validation
// checkpoint attributed the event to, when one is known.
type Diagnostic struct {
	Stage    Stage
	Func     string
	Pass     string // offending optimization pass; "" when not attributable
	Addr     uint64 // offending instruction address; 0 when unknown
	Severity Severity
	Msg      string
	Cause    error
}

func (d Diagnostic) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s [%s]", d.Severity, d.Stage)
	if d.Pass != "" {
		fmt.Fprintf(&sb, " (pass %s)", d.Pass)
	}
	if d.Func != "" {
		fmt.Fprintf(&sb, " @%s", d.Func)
	}
	if d.Addr != 0 {
		fmt.Fprintf(&sb, " at %#x", d.Addr)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Msg)
	if d.Cause != nil {
		fmt.Fprintf(&sb, ": %v", d.Cause)
	}
	return sb.String()
}

// Report collects the diagnostics of one pipeline run. It is safe for
// concurrent use; all methods are nil-receiver safe so pipeline code can
// report unconditionally.
type Report struct {
	mu       sync.Mutex
	diags    []Diagnostic
	degraded map[string]Stage // function -> first stage that forced fallback
}

// NewReport returns an empty report.
func NewReport() *Report { return &Report{} }

// Add appends a diagnostic.
func (r *Report) Add(d Diagnostic) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.diags = append(r.diags, d)
	r.mu.Unlock()
}

// Degrade records that fn fell back to the conservative full-fence
// translation because stage failed with cause.
func (r *Report) Degrade(fn string, stage Stage, cause error) {
	r.DegradePass(fn, stage, "", cause)
}

// DegradePass is Degrade with the failure attributed to a named
// optimization pass (the validation checkpoints know which pass broke the
// function; plain stage failures pass "").
func (r *Report) DegradePass(fn string, stage Stage, pass string, cause error) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if r.degraded == nil {
		r.degraded = map[string]Stage{}
	}
	if _, seen := r.degraded[fn]; !seen {
		r.degraded[fn] = stage
	}
	r.mu.Unlock()
	r.Add(Diagnostic{
		Stage:    stage,
		Func:     fn,
		Pass:     pass,
		Severity: Warning,
		Msg:      "falling back to the conservative full-fence translation",
		Cause:    cause,
		Addr:     AddrOf(cause),
	})
}

// Diagnostics returns a copy of the collected diagnostics.
func (r *Report) Diagnostics() []Diagnostic {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Diagnostic(nil), r.diags...)
}

// Degraded returns the sorted names of functions that fell back to the
// conservative translation.
func (r *Report) Degraded() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.degraded))
	for fn := range r.degraded {
		out = append(out, fn)
	}
	sort.Strings(out)
	return out
}

// DegradedStage returns the stage that forced fn's fallback, or "".
func (r *Report) DegradedStage(fn string) Stage {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.degraded[fn]
}

// Len returns the number of diagnostics.
func (r *Report) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.diags)
}

// Count returns the number of diagnostics at the given severity.
func (r *Report) Count(sev Severity) int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, d := range r.diags {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any Error-severity diagnostic was recorded.
func (r *Report) HasErrors() bool { return r.Count(Error) > 0 }

// FirstError returns the first Error-severity diagnostic, or nil.
func (r *Report) FirstError() *Diagnostic {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.diags {
		if r.diags[i].Severity == Error {
			d := r.diags[i]
			return &d
		}
	}
	return nil
}

// String renders the report, one diagnostic per line, with a degradation
// summary.
func (r *Report) String() string {
	if r == nil {
		return ""
	}
	var sb strings.Builder
	for _, d := range r.Diagnostics() {
		sb.WriteString(d.String())
		sb.WriteString("\n")
	}
	if deg := r.Degraded(); len(deg) > 0 {
		fmt.Fprintf(&sb, "%d function(s) degraded to conservative fences: %s\n",
			len(deg), strings.Join(deg, ", "))
	}
	return sb.String()
}

// PanicError is a panic caught at a Guard boundary, converted into an
// error. When the panic value is itself an error (e.g. the lifter's typed
// *InstrError), Unwrap exposes it to errors.Is/As.
type PanicError struct {
	Stage Stage
	Func  string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	where := string(e.Stage)
	if e.Func != "" {
		where += " @" + e.Func
	}
	return fmt.Sprintf("panic in %s: %v", where, e.Value)
}

// Unwrap returns the panic value when it is an error.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// Guard runs f, converting a panic into a *PanicError attributed to the
// given stage and function. This is the recover boundary that keeps one
// function's failure from killing a whole Translate call.
func Guard(stage Stage, fn string, f func() error) (err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Stage: stage, Func: fn, Value: v, Stack: debug.Stack()}
		}
	}()
	return f()
}

// Addresser is implemented by errors that know the machine address they
// occurred at (e.g. the lifter's InstrError).
type Addresser interface{ Address() uint64 }

// AddrOf extracts an instruction address from an error chain, or 0.
func AddrOf(err error) uint64 {
	var a Addresser
	if errors.As(err, &a) {
		return a.Address()
	}
	return 0
}

// Package inject is the fault-injection harness for the translation
// pipeline. The pipeline calls Hit at each stage boundary with a point name
// of the form "<stage>:<function>" (e.g. "refine:main", "fences:worker",
// "opt:module"); tests arm points to force an error, a panic, or a stall at
// exactly that boundary and then assert that the pipeline degrades instead
// of crashing.
//
// When no point is armed — the production state — Hit is a single atomic
// load.
package inject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects what an armed point does.
type Mode int

const (
	// Off disarms the point.
	Off Mode = iota
	// Fail makes Hit return a typed *Error.
	Fail
	// Panic makes Hit panic with a typed *Error, exercising the pipeline's
	// recover boundaries.
	Panic
	// Stall makes Hit sleep for StallDuration, exercising the pipeline's
	// time budgets.
	Stall
	// Corrupt marks a point at which the caller should apply a deterministic
	// silent corruption (a simulated miscompile). Hit returns nil for
	// Corrupt points — the mutation is the caller's job, queried through
	// ModeOf — so the failure is only discoverable by downstream validation
	// (checkpoints, the differential oracle), exactly like a real pass bug.
	Corrupt
)

func (m Mode) String() string {
	switch m {
	case Off:
		return "off"
	case Fail:
		return "fail"
	case Panic:
		return "panic"
	case Stall:
		return "stall"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// StallDuration is how long a Stall-armed point sleeps.
var StallDuration = 25 * time.Millisecond

// Error is the typed failure injected at an armed point.
type Error struct {
	Point string
	Mode  Mode
}

func (e *Error) Error() string {
	return fmt.Sprintf("inject: forced %s at %q", e.Mode, e.Point)
}

// armedPoint is one armed failpoint: its mode and, when remaining >= 0, how
// many more Hits it fires for before auto-disarming (-1 = unlimited).
type armedPoint struct {
	mode      Mode
	remaining int
}

var (
	armed  atomic.Int32 // number of armed points; the production fast path
	mu     sync.Mutex
	points = map[string]*armedPoint{}
)

// Arm sets the mode of a point. Arm(point, Off) is equivalent to Disarm.
func Arm(point string, m Mode) {
	armN(point, m, -1)
}

// ArmN arms a point for exactly n Hits: after firing n times the point
// disarms itself. This is the "kill once, then recover" shape chaos tests
// want — a transient fault the subject must absorb and then proceed past.
// n <= 0 is equivalent to Disarm.
func ArmN(point string, m Mode, n int) {
	if n <= 0 {
		Disarm(point)
		return
	}
	armN(point, m, n)
}

func armN(point string, m Mode, n int) {
	mu.Lock()
	defer mu.Unlock()
	_, was := points[point]
	if m == Off {
		if was {
			delete(points, point)
			armed.Add(-1)
		}
		return
	}
	points[point] = &armedPoint{mode: m, remaining: n}
	if !was {
		armed.Add(1)
	}
}

// Disarm removes a point.
func Disarm(point string) { Arm(point, Off) }

// Reset disarms every point.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	for p := range points {
		delete(points, p)
	}
	armed.Store(0)
}

// ModeOf returns the armed mode of a point (Off when disarmed). With
// nothing armed anywhere it costs one atomic load. ModeOf does not consume
// a count-limited arming; only Hit does.
func ModeOf(point string) Mode {
	if armed.Load() == 0 {
		return Off
	}
	mu.Lock()
	defer mu.Unlock()
	if p, ok := points[point]; ok {
		return p.mode
	}
	return Off
}

// Hit is called by the pipeline at a stage boundary. With nothing armed it
// costs one atomic load and returns nil.
func Hit(point string) error {
	if armed.Load() == 0 {
		return nil
	}
	mu.Lock()
	m := Off
	if p, ok := points[point]; ok {
		m = p.mode
		if p.remaining > 0 {
			p.remaining--
			if p.remaining == 0 {
				delete(points, point)
				armed.Add(-1)
			}
		}
	}
	mu.Unlock()
	switch m {
	case Fail:
		return &Error{Point: point, Mode: Fail}
	case Panic:
		panic(&Error{Point: point, Mode: Panic})
	case Stall:
		time.Sleep(StallDuration)
	}
	return nil
}

package inject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHitIsNil(t *testing.T) {
	Reset()
	if err := Hit("refine:f"); err != nil {
		t.Fatalf("disarmed Hit returned %v", err)
	}
}

func TestFailAndPanicModes(t *testing.T) {
	Reset()
	defer Reset()
	Arm("fences:f", Fail)
	err := Hit("fences:f")
	var ie *Error
	if !errors.As(err, &ie) || ie.Point != "fences:f" {
		t.Fatalf("got %v", err)
	}
	if err := Hit("fences:other"); err != nil {
		t.Fatalf("unarmed sibling point fired: %v", err)
	}

	Arm("opt:f", Panic)
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatal("expected panic")
			}
			if pe, ok := v.(*Error); !ok || pe.Point != "opt:f" {
				t.Fatalf("panic value %v", v)
			}
		}()
		Hit("opt:f")
	}()

	Disarm("opt:f")
	Disarm("fences:f")
	if err := Hit("fences:f"); err != nil {
		t.Fatalf("disarm did not take: %v", err)
	}
}

func TestStallMode(t *testing.T) {
	Reset()
	defer Reset()
	old := StallDuration
	StallDuration = 10 * time.Millisecond
	defer func() { StallDuration = old }()
	Arm("opt:slow", Stall)
	start := time.Now()
	if err := Hit("opt:slow"); err != nil {
		t.Fatalf("stall returned %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Errorf("stall too short: %v", d)
	}
}

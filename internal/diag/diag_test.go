package diag

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

type addrErr struct{ addr uint64 }

func (e *addrErr) Error() string   { return fmt.Sprintf("bad instruction at %#x", e.addr) }
func (e *addrErr) Address() uint64 { return e.addr }

func TestGuardConvertsPanics(t *testing.T) {
	err := Guard(StageLift, "f", func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("expected *PanicError, got %T (%v)", err, err)
	}
	if pe.Stage != StageLift || pe.Func != "f" || pe.Value != "boom" {
		t.Errorf("bad panic capture: %+v", pe)
	}
	if len(pe.Stack) == 0 {
		t.Error("no stack captured")
	}
}

func TestGuardUnwrapsTypedPanicValues(t *testing.T) {
	cause := &addrErr{addr: 0x401234}
	err := Guard(StageLift, "f", func() error { panic(cause) })
	var ae *addrErr
	if !errors.As(err, &ae) || ae.addr != 0x401234 {
		t.Fatalf("typed panic value not unwrapped: %v", err)
	}
	if AddrOf(err) != 0x401234 {
		t.Errorf("AddrOf = %#x, want 0x401234", AddrOf(err))
	}
}

func TestGuardPassesThroughErrors(t *testing.T) {
	want := errors.New("plain")
	if err := Guard(StageOpt, "g", func() error { return want }); err != want {
		t.Fatalf("got %v, want %v", err, want)
	}
	if err := Guard(StageOpt, "g", func() error { return nil }); err != nil {
		t.Fatalf("got %v, want nil", err)
	}
}

func TestReportCollectsConcurrently(t *testing.T) {
	r := NewReport()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Add(Diagnostic{Stage: StageOpt, Func: fmt.Sprintf("f%d", i), Severity: Warning, Msg: "m"})
			if i%4 == 0 {
				r.Degrade(fmt.Sprintf("f%d", i), StageFences, errors.New("x"))
			}
		}(i)
	}
	wg.Wait()
	if got := r.Len(); got != 16+4 {
		t.Errorf("Len = %d, want 20", got)
	}
	if got := len(r.Degraded()); got != 4 {
		t.Errorf("Degraded = %d entries, want 4", got)
	}
	if r.HasErrors() {
		t.Error("unexpected errors")
	}
	if r.Count(Warning) != 20 {
		t.Errorf("warnings = %d, want 20", r.Count(Warning))
	}
}

func TestReportNilSafe(t *testing.T) {
	var r *Report
	r.Add(Diagnostic{})
	r.Degrade("f", StageOpt, nil)
	if r.Len() != 0 || r.HasErrors() || r.String() != "" || r.FirstError() != nil {
		t.Error("nil report misbehaves")
	}
	if r.DegradedStage("f") != "" {
		t.Error("nil DegradedStage")
	}
}

func TestReportStringAndFirstError(t *testing.T) {
	r := NewReport()
	r.Add(Diagnostic{Stage: StageLift, Func: "f", Addr: 0x40, Severity: Error,
		Msg: "cannot lift", Cause: errors.New("bad operand")})
	r.Degrade("g", StageRefine, errors.New("refine blew up"))
	s := r.String()
	for _, want := range []string{"error [lift] @f at 0x40", "cannot lift", "bad operand",
		"warning [refine] @g", "degraded to conservative fences: g"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
	fe := r.FirstError()
	if fe == nil || fe.Func != "f" {
		t.Fatalf("FirstError = %+v", fe)
	}
	if r.DegradedStage("g") != StageRefine {
		t.Errorf("DegradedStage(g) = %q", r.DegradedStage("g"))
	}
}

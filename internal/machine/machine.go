// Package machine implements the MachineInstr lifting layer (Fig. 4): it
// reconstructs control-flow graphs from decoded instruction streams and
// performs the function-type discovery of §4.1 — live-register analysis
// against the System-V calling convention to recover parameter lists and
// return types that were erased by compilation.
package machine

import (
	"fmt"
	"sort"

	"lasagne/internal/mc"
	"lasagne/internal/x86"
)

// Block is one basic block of machine instructions.
type Block struct {
	Start uint64
	Insts []x86.Inst
	Succs []*Block

	// Liveness sets over registers (GP and XMM).
	use, def map[x86.Reg]bool
	in, out  map[x86.Reg]bool
}

// ParamKind distinguishes integer/pointer parameters from SSE ones.
type ParamKind int

const (
	ParamInt ParamKind = iota
	ParamF64
	ParamF32
)

// Param is one discovered parameter with its source register.
type Param struct {
	Reg  x86.Reg
	Kind ParamKind
}

// RetKind is the discovered return type.
type RetKind int

const (
	RetVoid RetKind = iota
	RetInt
	RetF64
)

// Function is a machine function with a CFG and a discovered type.
type Function struct {
	Name   string
	Entry  uint64
	Blocks []*Block
	Params []Param
	Ret    RetKind
}

// System-V parameter registers in ABI order.
var intParamRegs = []x86.Reg{x86.RDI, x86.RSI, x86.RDX, x86.RCX, x86.R8, x86.R9}
var fpParamRegs = []x86.Reg{x86.XMM0, x86.XMM1, x86.XMM2, x86.XMM3, x86.XMM4, x86.XMM5, x86.XMM6, x86.XMM7}

// Build reconstructs the CFG of a disassembled function and discovers its
// type.
func Build(s mc.Stream) (*Function, error) {
	if len(s.Insts) == 0 {
		return nil, fmt.Errorf("machine: %s is empty", s.Sym.Name)
	}
	f := &Function{Name: s.Sym.Name, Entry: s.Sym.Addr}
	if err := f.buildCFG(s); err != nil {
		return nil, err
	}
	f.liveness()
	f.discoverParams()
	f.discoverReturn()
	return f, nil
}

func (f *Function) buildCFG(s mc.Stream) error {
	end := s.Sym.Addr + s.Sym.Size
	// Leaders: entry, branch targets, instruction after each terminator.
	leaders := map[uint64]bool{s.Sym.Addr: true}
	for _, in := range s.Insts {
		if tgt, ok := in.BranchTarget(); ok && in.Op != x86.CALL {
			if tgt < s.Sym.Addr || tgt >= end {
				return fmt.Errorf("machine: %s: branch to %#x outside function", f.Name, tgt)
			}
			leaders[tgt] = true
		}
		if in.IsTerminator() {
			leaders[in.Addr+uint64(in.Len)] = true
		}
	}
	// Split into blocks.
	byStart := map[uint64]*Block{}
	var cur *Block
	for _, in := range s.Insts {
		if leaders[in.Addr] || cur == nil {
			cur = &Block{Start: in.Addr}
			byStart[in.Addr] = cur
			f.Blocks = append(f.Blocks, cur)
		}
		cur.Insts = append(cur.Insts, in)
	}
	// Successor edges.
	for _, b := range f.Blocks {
		last := b.Insts[len(b.Insts)-1]
		next := last.Addr + uint64(last.Len)
		addSucc := func(addr uint64) error {
			s, ok := byStart[addr]
			if !ok {
				return fmt.Errorf("machine: %s: no block at %#x", f.Name, addr)
			}
			b.Succs = append(b.Succs, s)
			return nil
		}
		switch last.Op {
		case x86.RET, x86.UD2:
		case x86.JMP:
			tgt, ok := last.BranchTarget()
			if !ok {
				return fmt.Errorf("machine: %s: indirect jump at %#x unsupported", f.Name, last.Addr)
			}
			if err := addSucc(tgt); err != nil {
				return err
			}
		case x86.JCC:
			tgt, _ := last.BranchTarget()
			if err := addSucc(tgt); err != nil {
				return err
			}
			if next < end {
				if err := addSucc(next); err != nil {
					return err
				}
			}
		default:
			if next < end {
				if err := addSucc(next); err != nil {
					return err
				}
			}
		}
	}
	// Stable order by address.
	sort.Slice(f.Blocks, func(i, j int) bool { return f.Blocks[i].Start < f.Blocks[j].Start })
	return nil
}

// callerSaved are the registers clobbered by a call under System-V.
var callerSaved = func() []x86.Reg {
	regs := []x86.Reg{x86.RAX, x86.RCX, x86.RDX, x86.RSI, x86.RDI, x86.R8, x86.R9, x86.R10, x86.R11}
	for r := x86.XMM0; r <= x86.XMM15; r++ {
		regs = append(regs, r)
	}
	return regs
}()

// useDef returns the registers read and written by one instruction.
// Memory operand base/index registers are always uses.
func useDef(in x86.Inst) (uses, defs []x86.Reg) {
	addMemUses := func(o x86.Operand) {
		if o.Kind != x86.KindMem {
			return
		}
		if o.Mem.Base != x86.RegNone && o.Mem.Base != x86.RIP {
			uses = append(uses, o.Mem.Base)
		}
		if o.Mem.Index != x86.RegNone {
			uses = append(uses, o.Mem.Index)
		}
	}
	for _, o := range in.Ops {
		addMemUses(o)
	}
	reg := func(i int) (x86.Reg, bool) {
		if i < len(in.Ops) && in.Ops[i].Kind == x86.KindReg {
			return in.Ops[i].Reg, true
		}
		return 0, false
	}

	switch in.Op {
	case x86.MOV, x86.MOVZX, x86.MOVSX, x86.MOVSXD, x86.LEA,
		x86.MOVSD_X, x86.MOVSS_X, x86.MOVQ, x86.MOVD, x86.MOVAPS, x86.MOVUPS,
		x86.CVTSI2SD, x86.CVTTSD2SI, x86.CVTSS2SD, x86.CVTSD2SS, x86.SETCC:
		// dst := f(src): dst written (if register), src read.
		if r, ok := reg(0); ok {
			defs = append(defs, r)
		}
		if r, ok := reg(1); ok {
			uses = append(uses, r)
		}
	case x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR,
		x86.SHL, x86.SHR, x86.SAR, x86.NEG, x86.NOT,
		x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.SQRTSD,
		x86.ADDSS, x86.SUBSS, x86.MULSS, x86.DIVSS,
		x86.PXOR, x86.XORPS, x86.ADDPD, x86.MULPD, x86.ADDPS, x86.PADDD,
		x86.CMOVCC:
		// dst := dst op src. An xor/pxor of a register with itself is the
		// conventional zeroing idiom: a pure definition, not a use.
		zeroIdiom := (in.Op == x86.XOR || in.Op == x86.PXOR || in.Op == x86.XORPS) &&
			len(in.Ops) == 2 && in.Ops[0].Kind == x86.KindReg && in.Ops[1].Kind == x86.KindReg &&
			in.Ops[0].Reg == in.Ops[1].Reg
		if r, ok := reg(0); ok {
			defs = append(defs, r)
			if !zeroIdiom {
				uses = append(uses, r)
			}
		}
		if r, ok := reg(1); ok && !zeroIdiom {
			uses = append(uses, r)
		}
	case x86.CMP, x86.TEST, x86.UCOMISD:
		for i := 0; i < 2; i++ {
			if r, ok := reg(i); ok {
				uses = append(uses, r)
			}
		}
	case x86.IMUL:
		if r, ok := reg(0); ok {
			defs = append(defs, r)
			if len(in.Ops) == 2 {
				uses = append(uses, r)
			}
		}
		if r, ok := reg(1); ok {
			uses = append(uses, r)
		}
	case x86.IMUL1, x86.MUL1, x86.IDIV, x86.DIV:
		uses = append(uses, x86.RAX, x86.RDX)
		defs = append(defs, x86.RAX, x86.RDX)
		if r, ok := reg(0); ok {
			uses = append(uses, r)
		}
	case x86.CQO, x86.CDQ:
		uses = append(uses, x86.RAX)
		defs = append(defs, x86.RDX)
	case x86.PUSH:
		if r, ok := reg(0); ok {
			uses = append(uses, r)
		}
		uses = append(uses, x86.RSP)
		defs = append(defs, x86.RSP)
	case x86.POP:
		if r, ok := reg(0); ok {
			defs = append(defs, r)
		}
		uses = append(uses, x86.RSP)
		defs = append(defs, x86.RSP)
	case x86.XCHG, x86.XADD:
		if r, ok := reg(0); ok {
			uses = append(uses, r)
			defs = append(defs, r)
		}
		if r, ok := reg(1); ok {
			uses = append(uses, r)
			defs = append(defs, r)
		}
	case x86.CMPXCHG:
		uses = append(uses, x86.RAX)
		defs = append(defs, x86.RAX)
		if r, ok := reg(0); ok {
			uses = append(uses, r)
			defs = append(defs, r)
		}
		if r, ok := reg(1); ok {
			uses = append(uses, r)
		}
	case x86.CALL:
		// Calls clobber all caller-saved registers. Argument registers are
		// not modeled as uses here; parameter discovery relies on reads
		// that occur before the call (mctoll behaves equivalently because
		// compilers load argument registers immediately before calls).
		defs = append(defs, callerSaved...)
		if r, ok := reg(0); ok {
			uses = append(uses, r)
		}
	}
	// Shift by CL reads RCX.
	if (in.Op == x86.SHL || in.Op == x86.SHR || in.Op == x86.SAR) &&
		len(in.Ops) == 2 && in.Ops[1].Kind == x86.KindReg {
		uses = append(uses, x86.RCX)
	}
	return uses, defs
}

// liveness computes per-block live-in/live-out register sets.
func (f *Function) liveness() {
	for _, b := range f.Blocks {
		b.use = map[x86.Reg]bool{}
		b.def = map[x86.Reg]bool{}
		b.in = map[x86.Reg]bool{}
		b.out = map[x86.Reg]bool{}
		for _, in := range b.Insts {
			uses, defs := useDef(in)
			for _, r := range uses {
				if !b.def[r] {
					b.use[r] = true
				}
			}
			for _, r := range defs {
				b.def[r] = true
			}
		}
	}
	changed := true
	for changed {
		changed = false
		for i := len(f.Blocks) - 1; i >= 0; i-- {
			b := f.Blocks[i]
			for _, s := range b.Succs {
				for r := range s.in {
					if !b.out[r] {
						b.out[r] = true
						changed = true
					}
				}
			}
			for r := range b.use {
				if !b.in[r] {
					b.in[r] = true
					changed = true
				}
			}
			for r := range b.out {
				if !b.def[r] && !b.in[r] {
					b.in[r] = true
					changed = true
				}
			}
		}
	}
}

// discoverParams applies §4.1: a conventional parameter register that is
// live-in at the entry block is a parameter. The System-V prefix property
// holds (a compiler never passes an argument in RSI without also using
// RDI), so discovery stops at the first non-live register.
func (f *Function) discoverParams() {
	entry := f.Blocks[0]
	for _, r := range intParamRegs {
		if !entry.in[r] {
			break
		}
		f.Params = append(f.Params, Param{Reg: r, Kind: ParamInt})
	}
	for _, r := range fpParamRegs {
		if !entry.in[r] {
			break
		}
		kind := ParamF64
		if f.firstXMMUseIsF32(r) {
			kind = ParamF32
		}
		f.Params = append(f.Params, Param{Reg: r, Kind: kind})
	}
}

// firstXMMUseIsF32 inspects the instructions using an XMM register to derive
// its type (§4.1: scalar instructions determine float vs double).
func (f *Function) firstXMMUseIsF32(r x86.Reg) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Insts {
			for _, o := range in.Ops {
				if o.Kind == x86.KindReg && o.Reg == r {
					switch in.Op {
					case x86.MOVSS_X, x86.ADDSS, x86.SUBSS, x86.MULSS, x86.DIVSS, x86.CVTSS2SD:
						return true
					case x86.MOVSD_X, x86.ADDSD, x86.SUBSD, x86.MULSD, x86.DIVSD, x86.UCOMISD, x86.CVTSD2SS:
						return false
					}
				}
			}
		}
	}
	return false
}

// discoverReturn applies the §4.1 heuristic: walk backwards from each RET;
// a definition of RAX (or XMM0) before any call indicates a return value.
func (f *Function) discoverReturn() {
	ret := RetVoid
	for _, b := range f.Blocks {
		last := b.Insts[len(b.Insts)-1]
		if last.Op != x86.RET {
			continue
		}
	scan:
		for i := len(b.Insts) - 2; i >= 0; i-- {
			in := b.Insts[i]
			if in.Op == x86.CALL {
				break
			}
			_, defs := useDef(in)
			for _, d := range defs {
				if d == x86.RAX {
					ret = RetInt
					break scan
				}
				if d == x86.XMM0 {
					ret = RetF64
					break scan
				}
			}
		}
	}
	f.Ret = ret
}

package machine

import (
	"testing"

	"lasagne/internal/backend"
	"lasagne/internal/mc"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
	"lasagne/internal/x86"
)

// buildStreams compiles minic source and disassembles the resulting binary.
func buildStreams(t *testing.T, src string) []mc.Stream {
	t.Helper()
	m, err := minic.Compile("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Optimize(m); err != nil {
		t.Fatal(err)
	}
	bin, err := backend.Compile(m, "x86-64")
	if err != nil {
		t.Fatal(err)
	}
	streams, err := mc.Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	return streams
}

func findFunc(t *testing.T, streams []mc.Stream, name string) *Function {
	t.Helper()
	for _, s := range streams {
		if s.Sym.Name == name {
			f, err := Build(s)
			if err != nil {
				t.Fatal(err)
			}
			return f
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

const testSrc = `
int add3(int a, int b, int c) { return a + b + c; }
double scale(double x, int k) { return x * (double)k; }
void sink(int v) { }
int branchy(int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (i % 2 == 0) s = s + i;
  }
  return s;
}
int main() {
  sink(add3(1, 2, 3));
  print_float(scale(2.0, 3));
  print_int(branchy(10));
  return 0;
}
`

func TestCFGReconstruction(t *testing.T) {
	streams := buildStreams(t, testSrc)
	f := findFunc(t, streams, "branchy")
	if len(f.Blocks) < 4 {
		t.Fatalf("branchy has %d blocks; expected a loop CFG", len(f.Blocks))
	}
	// Every block with successors points at real blocks; entry is first.
	if f.Blocks[0].Start != f.Entry {
		t.Fatal("first block is not the entry")
	}
	seen := map[*Block]bool{}
	for _, b := range f.Blocks {
		seen[b] = true
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			if !seen[s] {
				t.Fatal("successor outside function")
			}
		}
		last := b.Insts[len(b.Insts)-1]
		if last.Op == x86.JCC && len(b.Succs) != 2 {
			t.Fatalf("jcc block has %d successors", len(b.Succs))
		}
	}
}

func TestParamDiscovery(t *testing.T) {
	streams := buildStreams(t, testSrc)
	add3 := findFunc(t, streams, "add3")
	if len(add3.Params) != 3 {
		t.Fatalf("add3: %d params discovered, want 3 (%v)", len(add3.Params), add3.Params)
	}
	for i, r := range []x86.Reg{x86.RDI, x86.RSI, x86.RDX} {
		if add3.Params[i].Reg != r || add3.Params[i].Kind != ParamInt {
			t.Fatalf("add3 param %d = %+v", i, add3.Params[i])
		}
	}
	if add3.Ret != RetInt {
		t.Fatalf("add3 return %v, want int", add3.Ret)
	}
}

func TestSSEParamDiscovery(t *testing.T) {
	streams := buildStreams(t, testSrc)
	scale := findFunc(t, streams, "scale")
	var ints, fps int
	for _, p := range scale.Params {
		if p.Kind == ParamInt {
			ints++
		} else {
			fps++
		}
	}
	if ints != 1 || fps != 1 {
		t.Fatalf("scale params: %d int, %d fp (want 1/1): %+v", ints, fps, scale.Params)
	}
	if scale.Ret != RetF64 {
		t.Fatalf("scale return %v, want double", scale.Ret)
	}
}

func TestVoidReturnDiscovery(t *testing.T) {
	streams := buildStreams(t, testSrc)
	sink := findFunc(t, streams, "sink")
	if sink.Ret != RetVoid {
		t.Fatalf("sink return %v, want void", sink.Ret)
	}
}

func TestDisassembleErrors(t *testing.T) {
	streams := buildStreams(t, testSrc)
	_ = streams
	// Wrong-arch input is rejected by mc.
	m, _ := minic.Compile("t", "int main() { return 0; }")
	bin, err := backend.Compile(m, "arm64")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.Disassemble(bin); err == nil {
		t.Fatal("disassembling an arm64 binary should fail")
	}
}

package eval

import (
	"fmt"
	"strings"

	"lasagne/internal/backend"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/lifter"
	"lasagne/internal/par"
	"lasagne/internal/phoenix"
	"lasagne/internal/refine"
)

// FenceLoweringResult is one row of the weak-lowering table: static fence
// counts and simulated cycles at the three lowering tiers of the DMB
// lattice (naive Fig. 8a placement, §7.2 merged, and the escape-analysis +
// acquire/release lowering).
type FenceLoweringResult struct {
	Kernel string

	NaiveFences  int // Fig. 8a placement, stack filter only
	MergedFences int // + §7.2 merging (the §8 baseline)
	WeakFences   int // + escape elision, acquire/release strengthening

	AcquireLoads  int // LDAR-bound accesses in the weak tier
	ReleaseStores int // STLR-bound accesses in the weak tier

	NaiveCycles  int64
	MergedCycles int64
	WeakCycles   int64
}

// FenceLowering measures one Phoenix kernel at the three lowering tiers.
// Each tier is prepared from a clone of the same refined lifted module and
// simulated to completion on the Arm64 simulator.
func FenceLowering(b phoenix.Benchmark) (*FenceLoweringResult, error) {
	src, err := compileSource(b)
	if err != nil {
		return nil, err
	}
	xbin, err := backend.Compile(src, "x86-64")
	if err != nil {
		return nil, err
	}
	base, err := lifter.Lift(xbin)
	if err != nil {
		return nil, err
	}
	refine.Run(base)

	res := &FenceLoweringResult{Kernel: b.Name}
	type tier struct {
		prep   func(m *ir.Module)
		fences *int
		cycles *int64
	}
	weakPrep := func(m *ir.Module) {
		opts := fences.Options{
			SkipStackAccesses: true,
			UseEscape:         true,
			LocalGlobals:      fences.LocalGlobalSet(fences.ThreadLocalGlobals(m)),
		}
		fences.Place(m, opts)
		fences.Merge(m, opts)
		fences.Strengthen(m, opts)
	}
	tiers := []tier{
		{func(m *ir.Module) { fences.Place(m, placement) }, &res.NaiveFences, &res.NaiveCycles},
		{func(m *ir.Module) { fences.Place(m, placement); fences.Merge(m, placement) },
			&res.MergedFences, &res.MergedCycles},
		{weakPrep, &res.WeakFences, &res.WeakCycles},
	}
	mods := [3]*ir.Module{base, base.Clone(), base.Clone()} // cloned before the fan-out
	if err := par.FirstErr(len(tiers), Parallelism, func(i int) error {
		m := mods[i]
		tiers[i].prep(m)
		*tiers[i].fences = fences.Count(m)
		if i == 2 {
			res.AcquireLoads, res.ReleaseStores = fences.CountOrdered(m)
		}
		o, err := backend.Compile(m, "arm64")
		if err != nil {
			return err
		}
		mach, err := newMachine(o)
		if err != nil {
			return err
		}
		c, err := mach.Run()
		if err != nil {
			return err
		}
		*tiers[i].cycles = c
		return nil
	}); err != nil {
		return nil, err
	}
	return res, nil
}

// FenceLoweringTable runs FenceLowering over the whole Phoenix suite and
// formats the per-kernel table plus suite totals: the data behind `make
// bench-fences` and the EXPERIMENTS.md fence table.
func FenceLoweringTable() (string, error) {
	benches := phoenix.All()
	rows := make([]*FenceLoweringResult, len(benches))
	if err := par.FirstErr(len(benches), Parallelism, func(i int) error {
		r, err := FenceLowering(benches[i])
		rows[i] = r
		return err
	}); err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("Fence lowering (DMB lattice): naive Fig. 8a -> §7.2 merged -> weak (escape + acq/rel)\n")
	fmt.Fprintf(&sb, "%-18s %7s %7s %7s %5s %5s  %12s %12s %12s %7s\n",
		"kernel", "naive", "merged", "weak", "acq", "rel",
		"cyc(naive)", "cyc(merged)", "cyc(weak)", "dCyc%")
	var tn, tm, tw, ta, tr int
	var cn, cm, cw int64
	for _, r := range rows {
		d := 0.0
		if r.MergedCycles > 0 {
			d = 100 * float64(r.MergedCycles-r.WeakCycles) / float64(r.MergedCycles)
		}
		fmt.Fprintf(&sb, "%-18s %7d %7d %7d %5d %5d  %12d %12d %12d %6.2f%%\n",
			r.Kernel, r.NaiveFences, r.MergedFences, r.WeakFences,
			r.AcquireLoads, r.ReleaseStores,
			r.NaiveCycles, r.MergedCycles, r.WeakCycles, d)
		tn += r.NaiveFences
		tm += r.MergedFences
		tw += r.WeakFences
		ta += r.AcquireLoads
		tr += r.ReleaseStores
		cn += r.NaiveCycles
		cm += r.MergedCycles
		cw += r.WeakCycles
	}
	dTot := 0.0
	if cm > 0 {
		dTot = 100 * float64(cm-cw) / float64(cm)
	}
	fmt.Fprintf(&sb, "%-18s %7d %7d %7d %5d %5d  %12d %12d %12d %6.2f%%\n",
		"total", tn, tm, tw, ta, tr, cn, cm, cw, dTot)
	if tm > 0 {
		fmt.Fprintf(&sb, "static fences vs §8 baseline: %d -> %d (%.1f%% fewer)\n",
			tm, tw, 100*float64(tm-tw)/float64(tm))
	}
	return sb.String(), nil
}

package eval

import (
	"context"
	"fmt"
	"strings"

	"lasagne/internal/par"
	"lasagne/internal/phoenix"
)

// LockFreeTable builds and simulates every variant of the lock-free
// extension kernels (phoenix.LockFree — the ROADMAP's lock-free structure
// ports, deliberately outside Table 1) and renders their normalized
// runtimes and static fence counts. These kernels synchronize through
// plain loads and stores instead of atomic RMWs, so they stress the fence
// placement in the opposite way from the Phoenix suite: every ordering
// the program needs must come from inserted fences, none from LOCK'd
// instructions.
func LockFreeTable() (string, error) {
	return LockFreeTableContext(context.Background())
}

// LockFreeTableContext is LockFreeTable with every simulation bounded by
// ctx.
func LockFreeTableContext(ctx context.Context) (string, error) {
	benches := phoenix.LockFree()
	results := make([]*Result, len(benches))
	if err := par.FirstErr(len(benches), Parallelism, func(i int) error {
		r, err := BuildAll(benches[i])
		if err != nil {
			return err
		}
		if err := r.RunAllContext(ctx); err != nil {
			return err
		}
		results[i] = r
		return nil
	}); err != nil {
		return "", err
	}

	var sb strings.Builder
	sb.WriteString("Lock-free kernels: runtime normalized to Native and static fences\n")
	fmt.Fprintf(&sb, "%-14s", "Benchmark")
	for v := Variant(0); v < NumVariants; v++ {
		fmt.Fprintf(&sb, "%10s", v)
	}
	fmt.Fprintf(&sb, "%12s %8s %8s\n", "Fences(L)", "POpt", "PPOpt")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-14s", r.Bench.Abbrev)
		for v := Variant(0); v < NumVariants; v++ {
			fmt.Fprintf(&sb, "%10.2f", float64(r.Cycles[v])/float64(r.Cycles[Native]))
		}
		fmt.Fprintf(&sb, "%12d %8d %8d\n",
			r.Builds[Lifted].Fences, r.Builds[POpt].Fences, r.Builds[PPOpt].Fences)
		// All five variants must agree on observable output: the kernels
		// self-check by printing their queue checksums.
		for v := Variant(1); v < NumVariants; v++ {
			if r.Output[v] != r.Output[Native] {
				return "", fmt.Errorf("lockfree %s: %s output %q differs from Native %q",
					r.Bench.Name, v, r.Output[v], r.Output[Native])
			}
		}
	}
	return sb.String(), nil
}

package eval

import (
	"testing"

	"lasagne/internal/phoenix"
)

// TestParallelPipelineDeterministic builds and simulates the cheapest
// kernel with the worker pool disabled and enabled and requires identical
// measurements: simulated cycles, static fences, code sizes, cast counts
// and program outputs. This is the figure-level byte-identity guarantee of
// the parallel evaluation engine.
func TestParallelPipelineDeterministic(t *testing.T) {
	old := Parallelism
	defer func() { Parallelism = old }()

	run := func(workers int) *Result {
		Parallelism = workers
		r, err := BuildAll(*phoenix.Get("HT"))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := r.RunAll(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	serial := run(1)
	parallel := run(4)

	for v := Variant(0); v < NumVariants; v++ {
		if serial.Cycles[v] != parallel.Cycles[v] {
			t.Errorf("%s: cycles %d (serial) vs %d (parallel)", v, serial.Cycles[v], parallel.Cycles[v])
		}
		if serial.Output[v] != parallel.Output[v] {
			t.Errorf("%s: outputs differ", v)
		}
		sb, pb := serial.Builds[v], parallel.Builds[v]
		if sb.Fences != pb.Fences {
			t.Errorf("%s: fences %d (serial) vs %d (parallel)", v, sb.Fences, pb.Fences)
		}
		if sb.IRInstrs != pb.IRInstrs {
			t.Errorf("%s: IR instrs %d (serial) vs %d (parallel)", v, sb.IRInstrs, pb.IRInstrs)
		}
	}
	if serial.CastsRaw != parallel.CastsRaw || serial.CastsRef != parallel.CastsRef {
		t.Errorf("cast counts differ: serial %d/%d, parallel %d/%d",
			serial.CastsRaw, serial.CastsRef, parallel.CastsRaw, parallel.CastsRef)
	}
}

// TestLiftOnceCacheMatchesRelift checks that the cached lifted base module
// used by FenceOnlyCycles/PassIsolation measures the same as a Result that
// re-lifts from the x86 binary (liftedBase == nil exercises the fallback).
func TestLiftOnceCacheMatchesRelift(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := BuildAll(*phoenix.Get("HT"))
	if err != nil {
		t.Fatal(err)
	}
	n1, m1, f1, err := FenceOnlyCycles(r)
	if err != nil {
		t.Fatal(err)
	}
	uncached := &Result{Bench: r.Bench, XBinary: r.XBinary}
	n2, m2, f2, err := FenceOnlyCycles(uncached)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != n2 || m1 != m2 || f1 != f2 {
		t.Errorf("cached lift (%d,%d,%d) differs from re-lift (%d,%d,%d)", n1, m1, f1, n2, m2, f2)
	}
}

package eval

import "runtime"

// Parallelism bounds the worker pool used by BuildAll, RunAll, RunSuite and
// the figure helpers. Commands override it via their -parallel flag; setting
// it to 1 makes the whole pipeline sequential. Results are independent of
// the value: every fan-out writes to index-fixed slots and error selection
// is lowest-index deterministic.
var Parallelism = runtime.GOMAXPROCS(0)

package eval

import (
	"runtime"

	"lasagne/internal/obj"
	"lasagne/internal/sim"
)

// Parallelism bounds the worker pool used by BuildAll, RunAll, RunSuite and
// the figure helpers. Commands override it via their -parallel flag; setting
// it to 1 makes the whole pipeline sequential. Results are independent of
// the value: every fan-out writes to index-fixed slots and error selection
// is lowest-index deterministic.
var Parallelism = runtime.GOMAXPROCS(0)

// MaxSimSteps caps the instructions executed by each simulation the
// evaluation runs. Zero keeps the simulator default (sim.DefaultMaxSteps).
// Commands override it via their -max-steps flag; a simulation that hits
// the cap fails with an error wrapping diag.ErrBudgetExceeded.
var MaxSimSteps int64

// newMachine builds a simulator for o with MaxSimSteps applied.
func newMachine(o *obj.File) (*sim.Machine, error) {
	mach, err := sim.NewMachine(o)
	if err != nil {
		return nil, err
	}
	if MaxSimSteps > 0 {
		mach.MaxSteps = MaxSimSteps
	}
	return mach, nil
}

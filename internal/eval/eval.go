// Package eval implements the paper's evaluation pipeline (§9): it builds
// the five variants of each Phoenix kernel —
//
//	Native — minic → IR → O2 → Arm64
//	Lifted — minic → IR → O2 → x86-64 bytes → lift → fence placement → Arm64
//	Opt    — Lifted + IR re-optimization
//	POpt   — Opt + fence merging
//	PPOpt  — POpt + IR refinement before fence placement (full Lasagne)
//
// and measures the metrics behind Table 1 and Figures 12–17: simulated
// cycles, static fence counts, pointer-cast counts and IR code size.
package eval

import (
	"fmt"

	"lasagne/internal/backend"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/lifter"
	"lasagne/internal/minic"
	"lasagne/internal/obj"
	"lasagne/internal/opt"
	"lasagne/internal/phoenix"
	"lasagne/internal/refine"
	"lasagne/internal/sim"
)

// Variant identifies one build configuration of §9.1.
type Variant int

const (
	Native Variant = iota
	Lifted
	Opt
	POpt
	PPOpt
	NumVariants
)

var variantNames = [NumVariants]string{"Native", "Lifted", "Opt", "POpt", "PPOpt"}

func (v Variant) String() string { return variantNames[v] }

// Build is one compiled variant plus its static metrics.
type Build struct {
	Variant  Variant
	Module   *ir.Module
	Obj      *obj.File
	Fences   int // static fences after placement (+merging)
	IRInstrs int // code size after all IR processing
}

// Result holds everything measured for one benchmark.
type Result struct {
	Bench    phoenix.Benchmark
	Builds   [NumVariants]*Build
	Cycles   [NumVariants]int64
	Output   [NumVariants]string
	XBinary  *obj.File
	CastsRaw int // pointer casts in the raw lifted module
	CastsRef int // pointer casts after refinement
}

// placement is the fence placement used by every variant (it is part of
// correctness, §8 step 1).
var placement = fences.Options{SkipStackAccesses: true}

// compileSource builds a fresh optimized IR module from minic source.
func compileSource(b phoenix.Benchmark) (*ir.Module, error) {
	m, err := minic.Compile(b.Name, b.Source)
	if err != nil {
		return nil, err
	}
	if err := opt.Optimize(m); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildAll produces all five variants of a benchmark.
func BuildAll(b phoenix.Benchmark) (*Result, error) {
	res := &Result{Bench: b}

	// Native.
	nat, err := compileSource(b)
	if err != nil {
		return nil, fmt.Errorf("%s native: %w", b.Name, err)
	}
	natObj, err := backend.Compile(nat, "arm64")
	if err != nil {
		return nil, fmt.Errorf("%s native arm64: %w", b.Name, err)
	}
	res.Builds[Native] = &Build{Variant: Native, Module: nat, Obj: natObj, IRInstrs: nat.NumInstrs()}

	// The input x86 binary (what the paper's gcc produced).
	xsrc, err := compileSource(b)
	if err != nil {
		return nil, err
	}
	xbin, err := backend.Compile(xsrc, "x86-64")
	if err != nil {
		return nil, fmt.Errorf("%s x86: %w", b.Name, err)
	}
	res.XBinary = xbin

	relift := func() (*ir.Module, error) { return lifter.Lift(xbin) }

	// Lifted: naive pipeline, fences only.
	lm, err := relift()
	if err != nil {
		return nil, fmt.Errorf("%s lift: %w", b.Name, err)
	}
	res.CastsRaw = refine.CountPtrCasts(lm)
	fences.Place(lm, placement)
	bl := &Build{Variant: Lifted, Module: lm, Fences: fences.Count(lm), IRInstrs: lm.NumInstrs()}
	if bl.Obj, err = backend.Compile(lm, "arm64"); err != nil {
		return nil, fmt.Errorf("%s lifted arm64: %w", b.Name, err)
	}
	res.Builds[Lifted] = bl

	// Opt: Lifted + IR re-optimization.
	om, err := relift()
	if err != nil {
		return nil, err
	}
	fences.Place(om, placement)
	fcount := fences.Count(om)
	if err := opt.Optimize(om); err != nil {
		return nil, err
	}
	bo := &Build{Variant: Opt, Module: om, Fences: fcount, IRInstrs: om.NumInstrs()}
	if bo.Obj, err = backend.Compile(om, "arm64"); err != nil {
		return nil, fmt.Errorf("%s opt arm64: %w", b.Name, err)
	}
	res.Builds[Opt] = bo

	// POpt: Opt + fence merging.
	pm, err := relift()
	if err != nil {
		return nil, err
	}
	fences.Place(pm, placement)
	fences.Merge(pm)
	fcount = fences.Count(pm)
	if err := opt.Optimize(pm); err != nil {
		return nil, err
	}
	bp := &Build{Variant: POpt, Module: pm, Fences: fcount, IRInstrs: pm.NumInstrs()}
	if bp.Obj, err = backend.Compile(pm, "arm64"); err != nil {
		return nil, fmt.Errorf("%s popt arm64: %w", b.Name, err)
	}
	res.Builds[POpt] = bp

	// PPOpt: POpt + IR refinement before fence placement (full Lasagne).
	qm, err := relift()
	if err != nil {
		return nil, err
	}
	refine.Run(qm)
	res.CastsRef = refine.CountPtrCasts(qm)
	fences.Place(qm, placement)
	fences.Merge(qm)
	fcount = fences.Count(qm)
	if err := opt.Optimize(qm); err != nil {
		return nil, err
	}
	bq := &Build{Variant: PPOpt, Module: qm, Fences: fcount, IRInstrs: qm.NumInstrs()}
	if bq.Obj, err = backend.Compile(qm, "arm64"); err != nil {
		return nil, fmt.Errorf("%s ppopt arm64: %w", b.Name, err)
	}
	res.Builds[PPOpt] = bq
	return res, nil
}

// RunVariant simulates one build and records cycles and output.
func (r *Result) RunVariant(v Variant) error {
	mach, err := sim.NewMachine(r.Builds[v].Obj)
	if err != nil {
		return err
	}
	cycles, err := mach.Run()
	if err != nil {
		return fmt.Errorf("%s/%s: %w", r.Bench.Name, v, err)
	}
	r.Cycles[v] = cycles
	r.Output[v] = mach.Out.String()
	return nil
}

// RunAll simulates every variant and verifies they all produce the Native
// output.
func (r *Result) RunAll() error {
	for v := Variant(0); v < NumVariants; v++ {
		if err := r.RunVariant(v); err != nil {
			return err
		}
	}
	for v := Lifted; v < NumVariants; v++ {
		if r.Output[v] != r.Output[Native] {
			return fmt.Errorf("%s/%s output %q differs from native %q",
				r.Bench.Name, v, r.Output[v], r.Output[Native])
		}
	}
	return nil
}

// FenceOnlyCycles measures Fig. 15: the runtime of the *unoptimized* lifted
// code with (a) naive fences, (b) merged fences, (c) refinement-informed
// placement — isolating the effect of fence reduction from the other
// optimizations.
func FenceOnlyCycles(r *Result) (naive, merged, refined int64, err error) {
	run := func(m *ir.Module) (int64, error) {
		o, err := backend.Compile(m, "arm64")
		if err != nil {
			return 0, err
		}
		mach, err := sim.NewMachine(o)
		if err != nil {
			return 0, err
		}
		return mach.Run()
	}
	m1, err := lifter.Lift(r.XBinary)
	if err != nil {
		return 0, 0, 0, err
	}
	fences.Place(m1, placement)
	if naive, err = run(m1); err != nil {
		return 0, 0, 0, err
	}
	m2, err := lifter.Lift(r.XBinary)
	if err != nil {
		return 0, 0, 0, err
	}
	fences.Place(m2, placement)
	fences.Merge(m2)
	if merged, err = run(m2); err != nil {
		return 0, 0, 0, err
	}
	m3, err := lifter.Lift(r.XBinary)
	if err != nil {
		return 0, 0, 0, err
	}
	refine.Run(m3)
	fences.Place(m3, placement)
	fences.Merge(m3)
	if refined, err = run(m3); err != nil {
		return 0, 0, 0, err
	}
	return naive, merged, refined, nil
}

// PassIsolation measures Fig. 17: the code-size reduction of each pass run
// in isolation on the benchmark's refined, fence-placed lifted bitcode.
func PassIsolation(r *Result, passes []string) (map[string]float64, error) {
	out := map[string]float64{}
	for _, p := range passes {
		m, err := lifter.Lift(r.XBinary)
		if err != nil {
			return nil, err
		}
		refine.Run(m)
		fences.Place(m, placement)
		fences.Merge(m)
		before := m.NumInstrs()
		if _, err := opt.Run(m, p); err != nil {
			return nil, err
		}
		after := m.NumInstrs()
		out[p] = 100 * float64(before-after) / float64(before)
	}
	return out, nil
}

// Fig17Passes is the pass list of Fig. 17.
var Fig17Passes = []string{
	"instcombine", "dce", "adce", "licm", "reassociate", "gvn",
	"mem2reg", "sroa", "sccp", "ipsccp", "dse",
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vals {
		prod *= v
	}
	if prod <= 0 {
		return 0
	}
	return mathPow(prod, 1/float64(len(vals)))
}

// AblationFences quantifies the stack-access analysis of §8 step 1: the
// number of fences placed (and the simulated cycles) with and without the
// use-def stack filter on the raw lifted module.
func AblationFences(b phoenix.Benchmark) (withSkip, withoutSkip int, cyclesSkip, cyclesNo int64, err error) {
	src, err := compileSource(b)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	xbin, err := backend.Compile(src, "x86-64")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	run := func(opts fences.Options) (int, int64, error) {
		m, err := lifter.Lift(xbin)
		if err != nil {
			return 0, 0, err
		}
		fences.Place(m, opts)
		n := fences.Count(m)
		o, err := backend.Compile(m, "arm64")
		if err != nil {
			return 0, 0, err
		}
		mach, err := sim.NewMachine(o)
		if err != nil {
			return 0, 0, err
		}
		c, err := mach.Run()
		return n, c, err
	}
	withSkip, cyclesSkip, err = run(fences.Options{SkipStackAccesses: true})
	if err != nil {
		return
	}
	withoutSkip, cyclesNo, err = run(fences.Options{})
	return
}

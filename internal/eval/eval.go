// Package eval implements the paper's evaluation pipeline (§9): it builds
// the five variants of each Phoenix kernel —
//
//	Native — minic → IR → O2 → Arm64
//	Lifted — minic → IR → O2 → x86-64 bytes → lift → fence placement → Arm64
//	Opt    — Lifted + IR re-optimization
//	POpt   — Opt + fence merging
//	PPOpt  — POpt + IR refinement before fence placement (full Lasagne)
//
// and measures the metrics behind Table 1 and Figures 12–17: simulated
// cycles, static fence counts, pointer-cast counts and IR code size.
package eval

import (
	"context"
	"fmt"

	"lasagne/internal/backend"
	"lasagne/internal/core"
	"lasagne/internal/core/cache"
	"lasagne/internal/fences"
	"lasagne/internal/ir"
	"lasagne/internal/lifter"
	"lasagne/internal/minic"
	"lasagne/internal/obj"
	"lasagne/internal/opt"
	"lasagne/internal/par"
	"lasagne/internal/phoenix"
	"lasagne/internal/refine"
)

// TranslationCache, when non-nil, memoizes the function-local pipeline
// suffix across every translation BuildAll performs (all benchmarks, all
// variants). Drivers set it from -cache-dir; nil leaves caching off.
var TranslationCache *cache.Cache

// Variant identifies one build configuration of §9.1.
type Variant int

const (
	Native Variant = iota
	Lifted
	Opt
	POpt
	PPOpt
	NumVariants
)

var variantNames = [NumVariants]string{"Native", "Lifted", "Opt", "POpt", "PPOpt"}

func (v Variant) String() string { return variantNames[v] }

// Build is one compiled variant plus its static metrics.
type Build struct {
	Variant  Variant
	Module   *ir.Module
	Obj      *obj.File
	Fences   int // static fences after placement (+merging)
	IRInstrs int // code size after all IR processing
}

// Result holds everything measured for one benchmark.
type Result struct {
	Bench    phoenix.Benchmark
	Builds   [NumVariants]*Build
	Cycles   [NumVariants]int64
	Output   [NumVariants]string
	XBinary  *obj.File
	CastsRaw int // pointer casts in the raw lifted module
	CastsRef int // pointer casts after refinement

	// liftedBase is the pristine lifted module, before any fence placement
	// or optimization. BuildAll lifts XBinary exactly once; every consumer
	// (the four lifted variants, FenceOnlyCycles, PassIsolation) works on a
	// deep copy of this module instead of re-lifting.
	liftedBase *ir.Module
}

// lifted returns a fresh mutable copy of the benchmark's raw lifted module,
// falling back to lifting XBinary for Results not built via BuildAll.
func (r *Result) lifted() (*ir.Module, error) {
	if r.liftedBase != nil {
		return r.liftedBase.Clone(), nil
	}
	return lifter.Lift(r.XBinary)
}

// placement is the fence placement used by every variant (it is part of
// correctness, §8 step 1).
var placement = fences.Options{SkipStackAccesses: true}

// compileSource builds a fresh optimized IR module from minic source.
func compileSource(b phoenix.Benchmark) (*ir.Module, error) {
	m, err := minic.Compile(b.Name, b.Source)
	if err != nil {
		return nil, err
	}
	if err := opt.Optimize(m); err != nil {
		return nil, err
	}
	return m, nil
}

// BuildAll produces all five variants of a benchmark.
//
// The pipeline prefix shared by every variant runs once: the source is
// compiled a single time (the x86 input binary starts from a deep copy of
// the native module) and the x86 binary is lifted a single time. Each
// variant then applies its pass recipe to its own ir.Module copy, and the
// five builds run concurrently on up to Parallelism workers.
func BuildAll(b phoenix.Benchmark) (*Result, error) {
	res := &Result{Bench: b}

	// Shared prefix: one compile, one x86 codegen, one lift.
	nat, err := compileSource(b)
	if err != nil {
		return nil, fmt.Errorf("%s native: %w", b.Name, err)
	}
	xbin, err := backend.Compile(nat.Clone(), "x86-64")
	if err != nil {
		return nil, fmt.Errorf("%s x86: %w", b.Name, err)
	}
	res.XBinary = xbin
	base, err := lifter.Lift(xbin)
	if err != nil {
		return nil, fmt.Errorf("%s lift: %w", b.Name, err)
	}
	res.liftedBase = base
	res.CastsRaw = refine.CountPtrCasts(base)

	// The five builds are independent given nat/xbin; each writes only its
	// own Builds slot (plus CastsRef, owned by the PPOpt job). The four
	// lifted variants run the core translation pipeline with their variant's
	// Config, so they share the function-parallel workers and, when
	// TranslationCache is set, warm cache entries across repeated sweeps.
	jobs := [NumVariants]func() error{
		Native: func() error {
			natObj, err := backend.Compile(nat, "arm64")
			if err != nil {
				return fmt.Errorf("%s native arm64: %w", b.Name, err)
			}
			res.Builds[Native] = &Build{Variant: Native, Module: nat, Obj: natObj, IRInstrs: nat.NumInstrs()}
			return nil
		},
		Lifted: res.liftedVariant(b, xbin, Lifted),
		Opt:    res.liftedVariant(b, xbin, Opt),
		POpt:   res.liftedVariant(b, xbin, POpt),
		PPOpt:  res.liftedVariant(b, xbin, PPOpt),
	}
	if err := par.FirstErr(len(jobs), Parallelism, func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	return res, nil
}

// VariantConfig returns the core pipeline configuration reproducing variant
// v of §9.1: Lifted is the bare translation, Opt re-optimizes, POpt merges
// fences, PPOpt adds refinement (the full Lasagne Default).
func VariantConfig(v Variant) core.Config {
	cfg := core.Config{Jobs: Parallelism, Cache: TranslationCache}
	switch v {
	case Opt:
		cfg.Optimize = true
	case POpt:
		cfg.Optimize, cfg.MergeFences = true, true
	case PPOpt:
		cfg.Refine, cfg.MergeFences, cfg.Optimize = true, true, true
	}
	return cfg
}

// liftedVariant builds one x86→Arm64 variant through the core pipeline.
func (r *Result) liftedVariant(b phoenix.Benchmark, xbin *obj.File, v Variant) func() error {
	return func() error {
		m, st, _, err := core.TranslateToIR(xbin, VariantConfig(v))
		if err != nil {
			return fmt.Errorf("%s %s: %w", b.Name, v, err)
		}
		bl := &Build{Variant: v, Module: m, Fences: st.FencesFinal, IRInstrs: m.NumInstrs()}
		if v == PPOpt {
			r.CastsRef = st.PtrCastsAfter
		}
		if bl.Obj, err = backend.Compile(m, "arm64"); err != nil {
			return fmt.Errorf("%s %s arm64: %w", b.Name, v, err)
		}
		r.Builds[v] = bl
		return nil
	}
}

// RunVariant simulates one build and records cycles and output.
func (r *Result) RunVariant(v Variant) error {
	return r.RunVariantContext(context.Background(), v)
}

// RunVariantContext is RunVariant bounded by ctx and MaxSimSteps: an
// expired deadline or exhausted step cap fails the variant with an error
// wrapping diag.ErrBudgetExceeded.
func (r *Result) RunVariantContext(ctx context.Context, v Variant) error {
	mach, err := newMachine(r.Builds[v].Obj)
	if err != nil {
		return err
	}
	cycles, err := mach.RunContext(ctx)
	if err != nil {
		return fmt.Errorf("%s/%s: %w", r.Bench.Name, v, err)
	}
	r.Cycles[v] = cycles
	r.Output[v] = mach.Out.String()
	return nil
}

// RunAll simulates every variant and verifies they all produce the Native
// output. Variants run concurrently: each simulation owns a private Machine
// and writes only its own Cycles/Output slots.
func (r *Result) RunAll() error {
	return r.RunAllContext(context.Background())
}

// RunAllContext is RunAll with every simulation bounded by ctx.
func (r *Result) RunAllContext(ctx context.Context) error {
	if err := par.FirstErr(int(NumVariants), Parallelism, func(i int) error {
		return r.RunVariantContext(ctx, Variant(i))
	}); err != nil {
		return err
	}
	for v := Lifted; v < NumVariants; v++ {
		if r.Output[v] != r.Output[Native] {
			return fmt.Errorf("%s/%s output %q differs from native %q",
				r.Bench.Name, v, r.Output[v], r.Output[Native])
		}
	}
	return nil
}

// FenceOnlyCycles measures Fig. 15: the runtime of the *unoptimized* lifted
// code with (a) naive fences, (b) merged fences, (c) refinement-informed
// placement — isolating the effect of fence reduction from the other
// optimizations.
func FenceOnlyCycles(r *Result) (naive, merged, refined int64, err error) {
	run := func(m *ir.Module) (int64, error) {
		o, err := backend.Compile(m, "arm64")
		if err != nil {
			return 0, err
		}
		mach, err := newMachine(o)
		if err != nil {
			return 0, err
		}
		return mach.Run()
	}
	recipes := []func(m *ir.Module){
		func(m *ir.Module) { fences.Place(m, placement) },
		func(m *ir.Module) { fences.Place(m, placement); fences.Merge(m, placement) },
		func(m *ir.Module) { refine.Run(m); fences.Place(m, placement); fences.Merge(m, placement) },
	}
	var cycles [3]int64
	if err := par.FirstErr(len(recipes), Parallelism, func(i int) error {
		m, err := r.lifted()
		if err != nil {
			return err
		}
		recipes[i](m)
		cycles[i], err = run(m)
		return err
	}); err != nil {
		return 0, 0, 0, err
	}
	return cycles[0], cycles[1], cycles[2], nil
}

// PassIsolation measures Fig. 17: the code-size reduction of each pass run
// in isolation on the benchmark's refined, fence-placed lifted bitcode. The
// per-pass measurements are independent and run across the worker pool; the
// shared refined prefix is prepared once and cloned per pass.
func PassIsolation(r *Result, passes []string) (map[string]float64, error) {
	pre, err := r.lifted()
	if err != nil {
		return nil, err
	}
	refine.Run(pre)
	fences.Place(pre, placement)
	fences.Merge(pre, placement)
	before := pre.NumInstrs()

	red := make([]float64, len(passes))
	if err := par.FirstErr(len(passes), Parallelism, func(i int) error {
		m := pre.Clone()
		if _, err := opt.Run(m, passes[i]); err != nil {
			return err
		}
		red[i] = 100 * float64(before-m.NumInstrs()) / float64(before)
		return nil
	}); err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, p := range passes {
		out[p] = red[i]
	}
	return out, nil
}

// Fig17Passes is the pass list of Fig. 17.
var Fig17Passes = []string{
	"instcombine", "dce", "adce", "licm", "reassociate", "gvn",
	"mem2reg", "sroa", "sccp", "ipsccp", "dse",
}

// GeoMean computes the geometric mean of positive values.
func GeoMean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	prod := 1.0
	for _, v := range vals {
		prod *= v
	}
	if prod <= 0 {
		return 0
	}
	return mathPow(prod, 1/float64(len(vals)))
}

// AblationFences quantifies the stack-access analysis of §8 step 1: the
// number of fences placed (and the simulated cycles) with and without the
// use-def stack filter on the raw lifted module.
func AblationFences(b phoenix.Benchmark) (withSkip, withoutSkip int, cyclesSkip, cyclesNo int64, err error) {
	src, err := compileSource(b)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	xbin, err := backend.Compile(src, "x86-64")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	base, err := lifter.Lift(xbin)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	run := func(m *ir.Module, opts fences.Options) (int, int64, error) {
		fences.Place(m, opts)
		n := fences.Count(m)
		o, err := backend.Compile(m, "arm64")
		if err != nil {
			return 0, 0, err
		}
		mach, err := newMachine(o)
		if err != nil {
			return 0, 0, err
		}
		c, err := mach.Run()
		return n, c, err
	}
	opts := []fences.Options{{SkipStackAccesses: true}, {}}
	mods := [2]*ir.Module{base, base.Clone()} // cloned before the fan-out
	var ns [2]int
	var cs [2]int64
	if err = par.FirstErr(len(opts), Parallelism, func(i int) error {
		var e error
		ns[i], cs[i], e = run(mods[i], opts[i])
		return e
	}); err != nil {
		return 0, 0, 0, 0, err
	}
	return ns[0], ns[1], cs[0], cs[1], nil
}

package eval

import (
	"strings"
	"testing"

	"lasagne/internal/phoenix"
)

// TestHistogramVariants runs the cheapest kernel through all five variants
// and validates the paper's qualitative claims on it.
func TestHistogramVariants(t *testing.T) {
	r, err := BuildAll(*phoenix.Get("HT"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
}

func TestStringMatchVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := BuildAll(*phoenix.Get("SM"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
}

func TestKmeansVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	r, err := BuildAll(*phoenix.Get("KM"))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.RunAll(); err != nil {
		t.Fatal(err)
	}
	checkResult(t, r)
}

// checkResult validates the qualitative shape the paper reports.
func checkResult(t *testing.T, r *Result) {
	t.Helper()
	// All variants agree functionally (checked by RunAll) — now the shape:
	// Native is fastest; Lifted is slowest; PPOpt beats Lifted.
	if r.Cycles[Native] >= r.Cycles[Lifted] {
		t.Errorf("native (%d) should be faster than lifted (%d)", r.Cycles[Native], r.Cycles[Lifted])
	}
	if r.Cycles[PPOpt] >= r.Cycles[Lifted] {
		t.Errorf("PPOpt (%d) should be faster than Lifted (%d)", r.Cycles[PPOpt], r.Cycles[Lifted])
	}
	if r.Cycles[Opt] >= r.Cycles[Lifted] {
		t.Errorf("Opt (%d) should be faster than Lifted (%d)", r.Cycles[Opt], r.Cycles[Lifted])
	}
	// Fence counts: refinement reduces fences; merging never increases them.
	if r.Builds[PPOpt].Fences >= r.Builds[Lifted].Fences {
		t.Errorf("PPOpt fences (%d) should be below Lifted (%d)",
			r.Builds[PPOpt].Fences, r.Builds[Lifted].Fences)
	}
	if r.Builds[POpt].Fences > r.Builds[Lifted].Fences {
		t.Errorf("POpt fences (%d) exceed Lifted (%d)", r.Builds[POpt].Fences, r.Builds[Lifted].Fences)
	}
	// Refinement removes pointer casts.
	if r.CastsRef >= r.CastsRaw {
		t.Errorf("refinement did not reduce casts: %d -> %d", r.CastsRaw, r.CastsRef)
	}
	// Code size: every lifted variant is larger than native; optimization
	// shrinks the lifted code substantially.
	nat := r.Builds[Native].IRInstrs
	if r.Builds[Lifted].IRInstrs <= nat {
		t.Errorf("lifted (%d) should exceed native (%d)", r.Builds[Lifted].IRInstrs, nat)
	}
	if r.Builds[Opt].IRInstrs >= r.Builds[Lifted].IRInstrs {
		t.Errorf("opt (%d) should shrink lifted (%d)", r.Builds[Opt].IRInstrs, r.Builds[Lifted].IRInstrs)
	}
	t.Logf("%s: cycles N/L/O/P/PP = %d/%d/%d/%d/%d; fences L/P/PP = %d/%d/%d; casts %d->%d; size N/L/O/PP = %d/%d/%d/%d",
		r.Bench.Abbrev,
		r.Cycles[Native], r.Cycles[Lifted], r.Cycles[Opt], r.Cycles[POpt], r.Cycles[PPOpt],
		r.Builds[Lifted].Fences, r.Builds[POpt].Fences, r.Builds[PPOpt].Fences,
		r.CastsRaw, r.CastsRef,
		nat, r.Builds[Lifted].IRInstrs, r.Builds[Opt].IRInstrs, r.Builds[PPOpt].IRInstrs)
}

func TestTable1(t *testing.T) {
	out := Table1()
	for _, want := range []string{"histogram", "kmeans", "linear_regression", "matrix_multiply", "string_match"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %s:\n%s", want, out)
		}
	}
	for _, b := range phoenix.All() {
		if b.Functions() < 2 {
			t.Errorf("%s has %d functions; expected a multi-function kernel", b.Name, b.Functions())
		}
		if b.LoC() < 40 {
			t.Errorf("%s has only %d LoC", b.Name, b.LoC())
		}
	}
}

func TestPassIsolationOnHistogram(t *testing.T) {
	if testing.Short() {
		t.Skip("builds many module variants")
	}
	r, err := BuildAll(*phoenix.Get("HT"))
	if err != nil {
		t.Fatal(err)
	}
	red, err := PassIsolation(r, []string{"instcombine", "dce", "mem2reg"})
	if err != nil {
		t.Fatal(err)
	}
	for p, v := range red {
		if v < 0 {
			t.Errorf("pass %s grew the code (%.1f%%)", p, v)
		}
	}
	if red["instcombine"] == 0 && red["dce"] == 0 && red["mem2reg"] == 0 {
		t.Error("expected at least one pass to shrink the lifted code")
	}
}

// TestAblationStackAnalysis validates the DESIGN.md ablation: disabling the
// §8 stack-access analysis (fencing *every* access) must cost both more
// fences and more cycles.
func TestAblationStackAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	withSkip, withoutSkip, cSkip, cNo, err := AblationFences(*phoenix.Get("HT"))
	if err != nil {
		t.Fatal(err)
	}
	if withSkip >= withoutSkip {
		t.Errorf("stack analysis did not reduce fences: %d vs %d", withSkip, withoutSkip)
	}
	if cSkip >= cNo {
		t.Errorf("stack analysis did not reduce cycles: %d vs %d", cSkip, cNo)
	}
	t.Logf("fences %d vs %d (%.1fx), cycles %d vs %d (%.2fx)",
		withSkip, withoutSkip, float64(withoutSkip)/float64(withSkip),
		cSkip, cNo, float64(cNo)/float64(cSkip))
}

package eval

import (
	"context"
	"fmt"
	"math"
	"strings"

	"lasagne/internal/par"
	"lasagne/internal/phoenix"
)

func mathPow(x, e float64) float64 { return math.Pow(x, e) }

// Suite runs the full evaluation over all benchmarks.
type Suite struct {
	Results []*Result
}

// RunSuite builds and simulates every benchmark variant. Benchmarks are
// processed concurrently on up to Parallelism workers; results land in
// index-fixed slots, so Results keeps the phoenix.All() order regardless of
// completion order and the rendered figures are identical to a serial run.
func RunSuite() (*Suite, error) {
	return RunSuiteContext(context.Background())
}

// RunSuiteContext is RunSuite with every simulation bounded by ctx (builds
// are not interruptible, only simulations poll the context). On expiry the
// suite fails with an error wrapping diag.ErrBudgetExceeded instead of
// running to completion.
func RunSuiteContext(ctx context.Context) (*Suite, error) {
	benches := phoenix.All()
	s := &Suite{Results: make([]*Result, len(benches))}
	if err := par.FirstErr(len(benches), Parallelism, func(i int) error {
		r, err := BuildAll(benches[i])
		if err != nil {
			return err
		}
		if err := r.RunAllContext(ctx); err != nil {
			return err
		}
		s.Results[i] = r
		return nil
	}); err != nil {
		return nil, err
	}
	return s, nil
}

// Table1 renders the benchmark inventory (paper Table 1).
func Table1() string {
	var sb strings.Builder
	sb.WriteString("Table 1: Phoenix multi-threaded benchmark suite (minic ports)\n")
	fmt.Fprintf(&sb, "%-20s %-6s %-11s %s\n", "Benchmark", "Abbrv", "#Functions", "LoC")
	for _, b := range phoenix.All() {
		fmt.Fprintf(&sb, "%-20s %-6s %-11d %d\n", b.Name, b.Abbrev, b.Functions(), b.LoC())
	}
	return sb.String()
}

// Fig12 renders normalized runtimes (paper Fig. 12; lower is better).
func (s *Suite) Fig12() string {
	var sb strings.Builder
	sb.WriteString("Figure 12: runtime normalized to Native (simulated cycles; lower is better)\n")
	fmt.Fprintf(&sb, "%-20s", "Benchmark")
	for v := Variant(0); v < NumVariants; v++ {
		fmt.Fprintf(&sb, "%10s", v)
	}
	sb.WriteString("\n")
	norms := make([][]float64, NumVariants)
	for _, r := range s.Results {
		fmt.Fprintf(&sb, "%-20s", r.Bench.Abbrev)
		for v := Variant(0); v < NumVariants; v++ {
			n := float64(r.Cycles[v]) / float64(r.Cycles[Native])
			norms[v] = append(norms[v], n)
			fmt.Fprintf(&sb, "%10.2f", n)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-20s", "GMean")
	for v := Variant(0); v < NumVariants; v++ {
		fmt.Fprintf(&sb, "%10.2f", GeoMean(norms[v]))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Fig13 renders the pointer-cast reduction from IR refinement (Fig. 13).
func (s *Suite) Fig13() string {
	var sb strings.Builder
	sb.WriteString("Figure 13: pointer casts removed by IR refinement (%)\n")
	fmt.Fprintf(&sb, "%-20s %10s %10s %12s\n", "Benchmark", "lifted", "refined", "reduction")
	var vals []float64
	for _, r := range s.Results {
		red := 100 * float64(r.CastsRaw-r.CastsRef) / float64(r.CastsRaw)
		vals = append(vals, red)
		fmt.Fprintf(&sb, "%-20s %10d %10d %11.1f%%\n", r.Bench.Abbrev, r.CastsRaw, r.CastsRef, red)
	}
	fmt.Fprintf(&sb, "%-20s %33.1f%%\n", "GMean", GeoMean(vals))
	return sb.String()
}

// Fig14 renders the fence reduction of POpt and PPOpt relative to the naive
// placement (Fig. 14).
func (s *Suite) Fig14() string {
	var sb strings.Builder
	sb.WriteString("Figure 14: fence reduction relative to naive placement (%)\n")
	fmt.Fprintf(&sb, "%-20s %8s %8s %8s %10s %10s\n",
		"Benchmark", "Lifted", "POpt", "PPOpt", "POpt-red", "PPOpt-red")
	var pv, qv []float64
	for _, r := range s.Results {
		lf := r.Builds[Lifted].Fences
		pf := r.Builds[POpt].Fences
		qf := r.Builds[PPOpt].Fences
		pr := 100 * float64(lf-pf) / float64(lf)
		qr := 100 * float64(lf-qf) / float64(lf)
		pv = append(pv, pr)
		qv = append(qv, qr)
		fmt.Fprintf(&sb, "%-20s %8d %8d %8d %9.1f%% %9.1f%%\n", r.Bench.Abbrev, lf, pf, qf, pr, qr)
	}
	fmt.Fprintf(&sb, "%-20s %36.1f%% %9.1f%%\n", "GMean", GeoMean(pv), GeoMean(qv))
	return sb.String()
}

// Fig15 measures the runtime reduction of fence optimization alone on the
// unoptimized lifted code (Fig. 15).
func (s *Suite) Fig15() (string, error) {
	var sb strings.Builder
	sb.WriteString("Figure 15: runtime reduction from fence reduction alone (%)\n")
	fmt.Fprintf(&sb, "%-20s %12s %12s\n", "Benchmark", "POpt", "PPOpt")
	var pv, qv []float64
	for _, r := range s.Results {
		naive, merged, refined, err := FenceOnlyCycles(r)
		if err != nil {
			return "", err
		}
		pr := 100 * float64(naive-merged) / float64(naive)
		qr := 100 * float64(naive-refined) / float64(naive)
		pv = append(pv, math.Max(pr, 0.01))
		qv = append(qv, math.Max(qr, 0.01))
		fmt.Fprintf(&sb, "%-20s %11.2f%% %11.2f%%\n", r.Bench.Abbrev, pr, qr)
	}
	fmt.Fprintf(&sb, "%-20s %11.2f%% %11.2f%%\n", "GMean", GeoMean(pv), GeoMean(qv))
	return sb.String(), nil
}

// Fig16 renders the code size increase relative to native compilation
// (Fig. 16), in IR instructions.
func (s *Suite) Fig16() string {
	var sb strings.Builder
	sb.WriteString("Figure 16: code size increase vs native (%, IR instructions)\n")
	fmt.Fprintf(&sb, "%-20s", "Benchmark")
	for v := Lifted; v < NumVariants; v++ {
		fmt.Fprintf(&sb, "%10s", v)
	}
	sb.WriteString("\n")
	incs := make([][]float64, NumVariants)
	for _, r := range s.Results {
		nat := float64(r.Builds[Native].IRInstrs)
		fmt.Fprintf(&sb, "%-20s", r.Bench.Abbrev)
		for v := Lifted; v < NumVariants; v++ {
			inc := 100 * (float64(r.Builds[v].IRInstrs) - nat) / nat
			incs[v] = append(incs[v], inc)
			fmt.Fprintf(&sb, "%9.1f%%", inc)
		}
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "%-20s", "GMean")
	for v := Lifted; v < NumVariants; v++ {
		fmt.Fprintf(&sb, "%9.1f%%", GeoMean(incs[v]))
	}
	sb.WriteString("\n")
	return sb.String()
}

// Fig17 renders the per-pass isolated code reduction on kmeans (Fig. 17).
func (s *Suite) Fig17() (string, error) {
	var target *Result
	for _, r := range s.Results {
		if r.Bench.Abbrev == "KM" {
			target = r
		}
	}
	if target == nil {
		return "", fmt.Errorf("kmeans result missing")
	}
	red, err := PassIsolation(target, Fig17Passes)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	sb.WriteString("Figure 17: code reduction on kmeans, each pass in isolation (%)\n")
	for _, p := range Fig17Passes {
		fmt.Fprintf(&sb, "%-14s %6.1f%%\n", p, red[p])
	}
	return sb.String(), nil
}

module lasagne

go 1.22

package lasagne_test

import (
	"fmt"
	"log"

	"lasagne"
	"lasagne/internal/backend"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
	"lasagne/internal/sim"
)

// Example translates a concurrent message-passing binary from x86-64 to
// Arm64 and runs both on the built-in simulators.
func Example() {
	// A legacy program: producer/consumer communicating through shared
	// memory, relying on x86-TSO's store ordering.
	src := `
int data; int flag;
void producer(int v) { data = v; flag = 1; }
void consumer(int x) { while (flag == 0) { } print_int(data); }
int main() { spawn(consumer, 0); spawn(producer, 42); join(); return 0; }
`
	m, err := minic.Compile("mp", src)
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.Optimize(m); err != nil {
		log.Fatal(err)
	}
	x86bin, err := backend.Compile(m, "x86-64")
	if err != nil {
		log.Fatal(err)
	}

	// The Lasagne pipeline: lift, refine, place LIMM fences, optimize,
	// emit Arm64.
	armbin, stats, _, err := lasagne.Translate(x86bin, lasagne.Default())
	if err != nil {
		log.Fatal(err)
	}

	mach, err := sim.NewMachine(armbin)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("output: %s", mach.Out.String())
	fmt.Printf("fences in the translated code: %d\n", stats.FencesFinal)
	fmt.Printf("acquire loads / release stores: %d / %d\n",
		stats.AcquireLoads, stats.ReleaseStores)
	// The message-passing idiom needs no standalone fences at all on Arm:
	// the producer's flag store becomes a release store (STLR) and the
	// consumer's loads become acquire loads (LDAR) — the weak lowering
	// rediscovers exactly the Appendix A mapping.

	// Output:
	// output: 42
	// fences in the translated code: 0
	// acquire loads / release stores: 2 / 2
}

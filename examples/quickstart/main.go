// Quickstart: compile a small concurrent program to x86-64, translate the
// binary to Arm64 with the full Lasagne pipeline, and run both on the
// built-in simulators. This walks the exact path of Fig. 3 in the paper.
package main

import (
	"fmt"
	"log"

	"lasagne/internal/backend"
	"lasagne/internal/core"
	"lasagne/internal/minic"
	"lasagne/internal/opt"
	"lasagne/internal/sim"
)

// A message-passing program (the MP shape of Fig. 1/9): the flag protects
// the data, so the translated binary must preserve x86's store-store and
// load-load ordering via fences.
const src = `
int data;
int flag;

void producer(int v) {
  data = v;
  flag = 1;
}

void consumer(int ignored) {
  while (flag == 0) { }
  print_int(data);
}

int main() {
  spawn(consumer, 0);
  spawn(producer, 42);
  join();
  return 0;
}
`

func main() {
	// 1. "Legacy" build: compile for x86-64 (this is the input binary a
	//    Lasagne user starts from; source shown above only for the demo).
	m, err := minic.Compile("mp", src)
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.Optimize(m); err != nil {
		log.Fatal(err)
	}
	x86bin, err := backend.Compile(m, "x86-64")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("input x86-64 binary: %d bytes of machine code\n",
		len(x86bin.Section(".text").Data))

	// 2. Run the original on the x86 simulator.
	mach, err := sim.NewMachine(x86bin)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mach.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("x86-64 output: %q\n", mach.Out.String())

	// 3. Translate: lift → refine → place fences → optimize → Arm64.
	armbin, stats, _, err := core.Translate(x86bin, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("translated to Arm64: %d bytes of machine code\n",
		len(armbin.Section(".text").Data))
	fmt.Printf("  lifted IR: %d instructions, final IR: %d\n",
		stats.LiftedInstrs, stats.FinalInstrs)
	fmt.Printf("  pointer casts: %d -> %d after refinement\n",
		stats.PtrCastsBefore, stats.PtrCastsAfter)
	fmt.Printf("  fences: %d placed, %d merged away, %d in the final code\n",
		stats.FencesPlaced, stats.FencesMerged, stats.FencesFinal)

	// 4. Run the translated binary on the Arm64 simulator.
	mach2, err := sim.NewMachine(armbin)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mach2.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("arm64 output:  %q\n", mach2.Out.String())

	if mach.Out.String() == mach2.Out.String() {
		fmt.Println("outputs match: translation preserved the program ✓")
	}
}

// Appendix B demo: translate an Arm64 binary to x86-64. The interesting
// direction of the paper is strong-to-weak (x86 -> Arm), but the same IR
// and mapping machinery runs in reverse: DMB fences lift to LIMM fences,
// LL/SC loops are recognized as atomic read-modify-writes, and the x86
// backend lowers Fsc to MFENCE while Frm/Fww vanish into TSO's implicit
// ordering.
package main

import (
	"fmt"
	"log"

	"lasagne/internal/backend"
	"lasagne/internal/core"
	"lasagne/internal/minic"
	"lasagne/internal/obj"
	"lasagne/internal/opt"
	"lasagne/internal/sim"
)

const src = `
int stock;
int sold;

void seller(int n) {
  int i;
  for (i = 0; i < n; i = i + 1) {
    // Reserve one unit if available (CAS loop).
    int cur = stock;
    while (cur > 0) {
      int got = atomic_cas(&stock, cur, cur - 1);
      if (got == cur) {
        atomic_add(&sold, 1);
        cur = 0 - 1;
      } else {
        cur = got;
      }
    }
  }
}

int main() {
  stock = 150;
  int t;
  for (t = 0; t < 4; t = t + 1) spawn(seller, 50);
  join();
  print_int(stock);
  print_int(sold);
  return 0;
}
`

func main() {
	// Build the "legacy" Arm64 binary.
	m, err := minic.Compile("shop", src)
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.Optimize(m); err != nil {
		log.Fatal(err)
	}
	armBin, err := backend.Compile(m, "arm64")
	if err != nil {
		log.Fatal(err)
	}
	armCycles, armOut := run(armBin)
	fmt.Printf("arm64 original:   %q in %d cycles\n", armOut, armCycles)

	// Translate weak -> strong.
	x86Bin, stats, _, err := core.TranslateArmToX86(armBin, core.Default())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("lifted %d IR instructions (%d after optimization), %d LIMM fences from DMBs\n",
		stats.LiftedInstrs, stats.FinalInstrs, stats.FencesFinal)

	x86Cycles, x86Out := run(x86Bin)
	fmt.Printf("x86-64 translated: %q in %d cycles\n", x86Out, x86Cycles)
	if armOut == x86Out {
		fmt.Println("outputs match: LL/SC loops became LOCK instructions correctly ✓")
	} else {
		log.Fatal("translation changed the program!")
	}
}

func run(o *obj.File) (int64, string) {
	mach, err := sim.NewMachine(o)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := mach.Run()
	if err != nil {
		log.Fatal(err)
	}
	return cycles, mach.Out.String()
}

// Phoenix translation demo: builds one Phoenix kernel as an x86-64 binary,
// translates it with every pipeline configuration of §9.1, and compares
// cycle counts, fence counts and code size — a one-benchmark slice of the
// paper's Figs. 12, 14 and 16.
package main

import (
	"fmt"
	"log"
	"os"

	"lasagne/internal/backend"
	"lasagne/internal/core"
	"lasagne/internal/minic"
	"lasagne/internal/obj"
	"lasagne/internal/opt"
	"lasagne/internal/phoenix"
	"lasagne/internal/sim"
)

func main() {
	name := "HT"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	bench := phoenix.Get(name)
	if bench == nil {
		log.Fatalf("unknown benchmark %q (try HT, KM, LR, MM, SM)", name)
	}
	fmt.Printf("benchmark: %s (%d functions, %d LoC)\n\n", bench.Name, bench.Functions(), bench.LoC())

	// Native Arm64 baseline.
	m, err := minic.Compile(bench.Name, bench.Source)
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.Optimize(m); err != nil {
		log.Fatal(err)
	}
	natObj, err := backend.Compile(m, "arm64")
	if err != nil {
		log.Fatal(err)
	}
	natCycles, natOut := run(natObj)
	fmt.Printf("%-28s %14d cycles (baseline)\n", "Native (source -> arm64):", natCycles)

	// The x86 input binary.
	m2, err := minic.Compile(bench.Name, bench.Source)
	if err != nil {
		log.Fatal(err)
	}
	if err := opt.Optimize(m2); err != nil {
		log.Fatal(err)
	}
	x86bin, err := backend.Compile(m2, "x86-64")
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		cfg  core.Config
	}{
		{"Lifted (fences only)", core.Config{}},
		{"Opt   (+ LLVM opts)", core.Config{Optimize: true}},
		{"POpt  (+ fence merge)", core.Config{Optimize: true, MergeFences: true}},
		{"PPOpt (+ refinement)", core.Default()},
	}
	for _, c := range configs {
		armObj, stats, _, err := core.Translate(x86bin, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		cycles, out := run(armObj)
		if out != natOut {
			log.Fatalf("%s produced wrong output!", c.name)
		}
		fmt.Printf("%-28s %14d cycles (%.2fx native), %4d fences, %5d IR instrs\n",
			c.name+":", cycles, float64(cycles)/float64(natCycles),
			stats.FencesFinal, stats.FinalInstrs)
	}
	fmt.Println("\nall translated variants reproduced the native output ✓")
}

func run(o *obj.File) (int64, string) {
	mach, err := sim.NewMachine(o)
	if err != nil {
		log.Fatal(err)
	}
	cycles, err := mach.Run()
	if err != nil {
		log.Fatal(err)
	}
	return cycles, mach.Out.String()
}

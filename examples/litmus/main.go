// Litmus exploration: reproduces the motivating examples of the paper —
// Fig. 1 (SB and MP across x86/Arm), Fig. 2 (the miscompilation a naive
// lifter + optimizer produces), and Fig. 9 (how the verified mapping's
// fences restore x86 behavior on Arm).
package main

import (
	"fmt"
	"sort"

	mm "lasagne/internal/memmodel"
)

func show(name string, p *mm.Program, model mm.Model) {
	bs := mm.BehaviorsOf(p, model, true)
	keys := make([]string, 0, len(bs))
	for k := range bs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Printf("  under %-5s (%d behaviors)\n", model.Name, len(keys))
	for _, k := range keys {
		fmt.Printf("    %s\n", k)
	}
}

func main() {
	sb := &mm.Program{Name: "SB", Threads: [][]mm.Op{
		{mm.St("X", 1), mm.Ld("Y")},
		{mm.St("Y", 1), mm.Ld("X")},
	}}
	mp := &mm.Program{Name: "MP", Threads: [][]mm.Op{
		{mm.St("X", 1), mm.St("Y", 1)},
		{mm.Ld("Y"), mm.Ld("X")},
	}}

	fmt.Println("=== Fig. 1: SB — the weak outcome a=b=0 is allowed on x86 AND Arm ===")
	fmt.Println(sb)
	show("SB", sb, mm.X86)
	show("SB", sb, mm.Arm)

	fmt.Println()
	fmt.Println("=== Fig. 1: MP — a=1,b=0 is forbidden on x86 but allowed on Arm ===")
	fmt.Println(mp)
	show("MP", mp, mm.X86)
	show("MP", mp, mm.Arm)

	fmt.Println()
	fmt.Println("=== Fig. 2: translating MP without fences miscompiles ===")
	fmt.Println("lifting x86 MP to plain non-atomic IR accesses and compiling to Arm")
	fmt.Println("admits the outcome a=1,b=0 that the x86 original forbids:")
	show("MP-naked-on-Arm", mp, mm.Arm)

	fmt.Println()
	fmt.Println("=== Fig. 9: the verified mapping inserts Fww/Frm -> DMBST/DMBLD ===")
	irMP := mm.MapX86ToIR(mp)
	fmt.Println(irMP)
	show("MP-IR", irMP, mm.LIMM)
	armMP := mm.MapIRToArm(irMP)
	fmt.Println(armMP)
	show("MP-Arm", armMP, mm.Arm)

	fmt.Println()
	fmt.Println("=== Thm 7.1 check on both programs ===")
	for _, p := range []*mm.Program{sb, mp} {
		err := mm.CheckMapping(p, mm.X86, func(q *mm.Program) *mm.Program {
			return mm.MapIRToArm(mm.MapX86ToIR(q))
		}, mm.Arm)
		if err != nil {
			fmt.Printf("%s: MAPPING UNSOUND: %v\n", p.Name, err)
		} else {
			fmt.Printf("%s: x86 -> IR -> Arm mapping verified ✓\n", p.Name)
		}
	}
}
